#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace ici {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformThrowsOnZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    hit_lo |= v == 3;
    hit_hi |= v == 5;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, RangeThrowsWhenInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.range(5, 3), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double total = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  double total = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / kN, 5.0, 0.15);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(31), b(31);
  EXPECT_EQ(a.bytes(13).size(), 13u);
  Rng c(31);
  EXPECT_EQ(b.bytes(32), c.bytes(32));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(41);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(43);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[rng.uniform(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

}  // namespace
}  // namespace ici
