#include "common/stats.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.sum(), 42.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, CvZeroWhenMeanZero) {
  RunningStat s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStat, CvMatchesDefinition) {
  RunningStat s;
  for (double v : {10.0, 20.0, 30.0}) s.add(v);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-12);
}

TEST(Histogram, PercentilesOfUniformRamp) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.p50(), 50.5, 0.01);
  EXPECT_NEAR(h.p99(), 99.01, 0.05);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, SingleSampleAllPercentilesEqual) {
  Histogram h;
  h.add(7.0);
  EXPECT_EQ(h.percentile(0), 7.0);
  EXPECT_EQ(h.p50(), 7.0);
  EXPECT_EQ(h.p99(), 7.0);
}

TEST(Histogram, InterleavedAddAndQuery) {
  Histogram h;
  h.add(3.0);
  EXPECT_EQ(h.p50(), 3.0);
  h.add(1.0);
  h.add(2.0);
  EXPECT_EQ(h.p50(), 2.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ClampsOutOfRangePercentiles) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  EXPECT_EQ(h.percentile(-5), 1.0);
  EXPECT_EQ(h.percentile(150), 2.0);
}

TEST(FormatBytes, HumanReadableUnits) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024), "1.00 MiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace ici
