// Event-order determinism suite for the calendar-queue overhaul: golden
// FIFO order at equal timestamps, interleaved after/at, calendar-boundary
// cases (bucket edges, far-heap spills, window re-anchoring), and a
// randomized differential test replaying the same million-event schedule
// through the production EventQueue and the pre-overhaul reference queue
// (sim/reference_queue.h), asserting identical execution order. The
// simulator's determinism contract — execution is total-ordered by
// (time, schedule-sequence) — is what keeps every BENCH_*.json artifact
// bit-reproducible, so this suite is the contract's enforcement point.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"
#include "sim/simulator.h"

namespace ici::sim {
namespace {

constexpr SimTime kW = EventQueue::kBucketWidthUs;
constexpr std::uint64_t kB = EventQueue::kBucketCount;

TEST(EventQueueDeterminism, EqualTimestampsRunInScheduleOrderAcrossBuckets) {
  EventQueue q;
  std::vector<int> order;
  // Interleave two timestamps in opposite bucket order so heap internals
  // would scramble a non-(at, seq) ordering.
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(5 * kW + 3, [&order, i] { order.push_back(100 + i); });
    q.schedule_at(2 * kW + 7, [&order, i] { order.push_back(i); });
  }
  std::vector<int> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(i);
  for (int i = 0; i < 16; ++i) expect.push_back(100 + i);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, expect);
}

TEST(EventQueueDeterminism, InterleavedAfterAndAtPreserveTotalOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.after(10, [&] {
    order.push_back(1);
    sim.at(30, [&] { order.push_back(4); });    // same time as the after() below
    sim.after(20, [&] { order.push_back(5); }); // scheduled later -> runs after
    sim.at(5, [&] { order.push_back(2); });     // past deadline -> clamps to now
    sim.after(0, [&] { order.push_back(3); });  // now, but after the clamped at()
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.late_events(), 1u);
}

TEST(EventQueueDeterminism, BucketBoundaryTimesStaySorted) {
  EventQueue q;
  std::vector<SimTime> times;
  const SimTime probes[] = {kW - 1, kW, kW + 1, 2 * kW - 1, 2 * kW, 0, 1};
  for (SimTime t : probes) q.schedule_at(t, [&times, t] { times.push_back(t); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 1, kW - 1, kW, kW + 1, 2 * kW - 1, 2 * kW}));
}

TEST(EventQueueDeterminism, FarFutureEventsSpillToHeapAndStillSort) {
  EventQueue q;
  std::vector<int> order;
  const SimTime horizon = kB * kW;
  // First schedule anchors the (empty) window near t=0; the rest lie past
  // the horizon and must take the far-heap fallback.
  q.schedule_at(1, [&] { order.push_back(1); });
  q.schedule_at(3 * horizon, [&] { order.push_back(3); });  // far
  q.schedule_at(horizon + 5, [&] { order.push_back(2); });  // far
  q.schedule_at(3 * horizon, [&] { order.push_back(4); });  // far, same time as #3
  EXPECT_EQ(q.stats().far_events, 3u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueDeterminism, ReanchorsAfterDrainingCompletely) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule_at(7, [&] { times.push_back(7); });
  while (!q.empty()) q.run_next();
  // Queue empty; next schedule far from the previous window must re-anchor.
  const SimTime far_ahead = 1000 * kB * kW + 13;
  q.schedule_at(far_ahead, [&times, far_ahead] { times.push_back(far_ahead); });
  q.schedule_at(far_ahead + 1, [&times, far_ahead] { times.push_back(far_ahead + 1); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(times, (std::vector<SimTime>{7, far_ahead, far_ahead + 1}));
}

// The load-bearing test: replay one randomized schedule — bursty arrivals,
// equal-time clusters, timeouts near the horizon, multi-minute timers past
// it, and events chained from inside events like real protocol code — in
// the production queue and the reference binary heap, and require the exact
// same execution order over 1M+ events.
TEST(EventQueueDeterminism, DifferentialMillionEventsMatchReferenceHeap) {
  constexpr std::uint64_t kSeedEvents = 200'000;  // chained events triple this
  constexpr std::uint64_t kSpawnLimit = 1'200'000;

  struct Run {
    std::vector<std::uint64_t> order;
    std::uint64_t spawned = 0;
  };

  // Drives either queue type through the identical schedule: same RNG seed,
  // same draw sequence, same chaining rule.
  const auto drive = [&](auto& q) {
    Run run;
    Rng rng(20260806);
    SimTime now = 0;
    std::uint64_t next_id = 0;

    const auto delay_draw = [&rng]() -> SimTime {
      const double pick = rng.uniform01();
      if (pick < 0.55) return 2000 + static_cast<SimTime>(rng.exponential(4000.0));  // deliveries
      if (pick < 0.75) return rng.uniform(3);  // same-time cascades
      if (pick < 0.95) return 1'000'000 + rng.uniform(3'000'000);  // timeouts
      return 60'000'000 + rng.uniform(600'000'000);  // churn-scale timers
    };

    // Each executed event may schedule 0-2 more relative to its own time,
    // exactly like protocol handlers do.
    std::function<void(std::uint64_t)> on_fire;  // shared by both queue types
    const auto schedule = [&](SimTime at) {
      const std::uint64_t id = next_id++;
      q.schedule_at(at, [&on_fire, id] { on_fire(id); });
      ++run.spawned;
    };
    on_fire = [&](std::uint64_t id) {
      run.order.push_back(id);
      if (run.spawned >= kSpawnLimit) return;
      const std::uint64_t children = rng.uniform(3);  // 0..2, mean 1
      for (std::uint64_t c = 0; c < children; ++c) schedule(now + delay_draw());
    };

    for (std::uint64_t i = 0; i < kSeedEvents; ++i) schedule(delay_draw());
    while (!q.empty()) now = q.run_next();
    return run;
  };

  EventQueue fast;
  ReferenceEventQueue ref;
  const Run a = drive(fast);
  const Run b = drive(ref);

  ASSERT_GT(a.order.size(), 1'000'000u) << "schedule too small to be meaningful";
  ASSERT_EQ(a.order.size(), b.order.size());
  ASSERT_EQ(a.order, b.order) << "execution order diverged from the reference heap";
  EXPECT_GT(fast.stats().far_events, 0u) << "schedule never exercised the far-heap fallback";
  EXPECT_EQ(fast.stats().executed, a.order.size());
}

}  // namespace
}  // namespace ici::sim
