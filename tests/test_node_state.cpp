// Tests for the flattened node-state layout (PR 6): the fleet-shared
// HeaderIndex, the SoA FleetTally, the ObjectArena node storage — and the
// contract that the refactor is purely representational: deterministic sim
// metrics must be bit-identical to the per-node-maps implementation it
// replaced (goldens captured from that implementation at N=1000).
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "common/arena.h"
#include "ici/network.h"
#include "storage/fleet_tally.h"

namespace ici {
namespace {

Chain small_chain(std::size_t blocks, std::size_t txs) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = txs;
  return ChainGenerator(cfg).generate();
}

std::unique_ptr<core::IciNetwork> preloaded_net(const Chain& chain, std::size_t nodes,
                                                std::size_t clusters) {
  core::IciNetworkConfig cfg;
  cfg.node_count = nodes;
  cfg.ici.cluster_count = clusters;
  auto net = std::make_unique<core::IciNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

TEST(HeaderIndexSharing, OneInternPerBlockAcrossTheFleet) {
  const Chain chain = small_chain(6, 3);
  const auto net = preloaded_net(chain, 24, 3);

  // Every node knows every header, but the fleet interned each exactly once.
  EXPECT_EQ(net->header_index()->size(), chain.size());
  for (std::size_t id = 0; id < net->node_count(); ++id) {
    const BlockStore& store = net->node(static_cast<cluster::NodeId>(id)).store();
    EXPECT_EQ(store.header_count(), chain.size());
    EXPECT_EQ(store.header_bytes(), chain.size() * BlockHeader::kWireSize);
    // All stores share the network's index object, not copies of it.
    EXPECT_EQ(store.header_index().get(), net->header_index().get());
  }
  EXPECT_EQ(net->header_index()->interned_bytes(),
            chain.size() * BlockHeader::kWireSize);
}

TEST(HeaderIndexSharing, LookupsStayNodeLocal) {
  const Chain chain = small_chain(5, 3);
  const auto net = preloaded_net(chain, 16, 2);

  // A header another node interned is not visible to a node that never
  // received it: add a joiner with an empty bitmap and probe.
  const cluster::NodeId joiner = net->add_joiner({50.0, 50.0}, 0);
  const BlockStore& fresh = net->node(joiner).store();
  EXPECT_EQ(fresh.header_count(), 0u);
  EXPECT_FALSE(fresh.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_FALSE(fresh.header_at(1).has_value());

  // While an established node still resolves both lookups.
  const BlockStore& old = net->node(0).store();
  EXPECT_TRUE(old.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_EQ(old.header_at(1)->hash(), chain.at_height(1).hash());
}

TEST(FleetTallyTest, StoresWriteThroughTheSharedRows) {
  const Chain chain = small_chain(5, 3);
  const auto net = preloaded_net(chain, 16, 2);

  const FleetTally& tally = net->fleet_tally();
  ASSERT_EQ(tally.size(), net->node_count());
  std::uint64_t tally_bodies = 0;
  std::uint64_t store_bodies = 0;
  for (std::size_t id = 0; id < net->node_count(); ++id) {
    tally_bodies += tally.slot(id).body_bytes;
    store_bodies += net->node(static_cast<cluster::NodeId>(id)).store().body_bytes();
    EXPECT_EQ(tally.slot(id).header_count,
              net->node(static_cast<cluster::NodeId>(id)).store().header_count());
  }
  EXPECT_GT(tally_bodies, 0u);
  EXPECT_EQ(tally_bodies, store_bodies);

  // The SoA storage snapshot agrees with summing per-node accessors.
  const StorageSnapshot snap = net->storage_snapshot();
  std::uint64_t per_node_total = 0;
  for (std::size_t id = 0; id < net->node_count(); ++id) {
    per_node_total += net->node(static_cast<cluster::NodeId>(id)).storage_bytes();
  }
  EXPECT_EQ(snap.total_bytes, per_node_total);
}

TEST(ObjectArenaTest, StableAddressesAcrossGrowth) {
  ObjectArena<std::uint64_t> arena(/*chunk_capacity=*/4);
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t i = 0; i < 100; ++i) ptrs.push_back(&arena.emplace_back(i));
  EXPECT_EQ(arena.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*ptrs[i], i);           // no element ever moved
    EXPECT_EQ(&arena[i], ptrs[i]);    // indexing finds the same object
  }
  EXPECT_THROW(static_cast<void>(arena.at(100)), std::out_of_range);
}

struct Counted {
  inline static int live = 0;
  Counted() { ++live; }
  ~Counted() { --live; }
};

TEST(ObjectArenaTest, ClearKeepsChunksAndReuses) {
  ObjectArena<Counted> arena(8);
  for (int i = 0; i < 20; ++i) arena.emplace_back();
  EXPECT_EQ(Counted::live, 20);
  const std::size_t cap = arena.capacity();
  arena.clear();
  EXPECT_EQ(Counted::live, 0);
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.capacity(), cap);  // chunks retained for reuse
  for (int i = 0; i < 5; ++i) arena.emplace_back();
  EXPECT_EQ(Counted::live, 5);
  EXPECT_EQ(arena.capacity(), cap);  // reuse did not allocate
}

// -- bit-identity against the pre-flattening implementation ------------------
//
// Golden values captured from the per-node-maps implementation (PR 5 tree)
// with this exact configuration. The flattening must not change how many
// events run, how the queue fills, or what the fleet stores — only where
// the bytes live. Wall-clock/RSS metrics are exempt by design.
// peak_pending re-captured for the sharded engine (PR 8): per-sender
// jitter streams shift individual arrival times, which moves the pending
// high-water mark while event counts and stored bytes stay put.
struct SimGolden {
  std::uint64_t seed;
  std::uint64_t events_executed;
  std::uint64_t peak_pending;
  std::uint64_t far_events;
  std::uint64_t total_bytes;
};

class NodeStateBitIdentity : public ::testing::TestWithParam<SimGolden> {};

TEST_P(NodeStateBitIdentity, LiveDisseminationMatchesGoldens) {
  const SimGolden& g = GetParam();

  ChainGenConfig ccfg;
  ccfg.txs_per_block = 8;
  ccfg.workload.seed = g.seed;
  ccfg.workload.wallet_count = 64;
  ccfg.workload.genesis_outputs_per_wallet = 8;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig ncfg;
  ncfg.node_count = 1000;
  ncfg.ici.cluster_count = 50;
  ncfg.ici.replication = 1;
  ncfg.seed = g.seed;
  core::IciNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  for (int b = 0; b < 2; ++b) {
    chain.append(gen.next_block(chain));
    net.disseminate_and_settle(chain.tip());
  }

  const metrics::Registry& reg = net.metrics();
  EXPECT_EQ(reg.counter_value("sim.events_executed"), g.events_executed);
  EXPECT_EQ(reg.counter_value("sim.peak_pending"), g.peak_pending);
  EXPECT_EQ(reg.counter_value("sim.far_events"), g.far_events);
  EXPECT_EQ(reg.counter_value("sim.late_events"), 0u);
  EXPECT_EQ(reg.counter_value("sim.event_heap_fallbacks"), 0u);
  EXPECT_EQ(net.storage_snapshot().total_bytes, g.total_bytes);
  EXPECT_EQ(net.availability(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    TwoSeeds, NodeStateBitIdentity,
    ::testing::Values(SimGolden{42, 8549, 797, 852, 3'503'600},
                      SimGolden{7, 8552, 662, 853, 3'492'000}),
    [](const ::testing::TestParamInfo<SimGolden>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace ici
