#include "chain/workload.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

TEST(WorkloadGenerator, GenesisFundsAllWallets) {
  WorkloadConfig cfg;
  cfg.wallet_count = 8;
  cfg.genesis_outputs_per_wallet = 3;
  WorkloadGenerator gen(cfg);
  const Block genesis = gen.make_genesis();
  ASSERT_EQ(genesis.txs().size(), 1u);
  EXPECT_EQ(genesis.txs()[0].outputs().size(), 24u);
  EXPECT_TRUE(genesis.txs()[0].is_coinbase());
  EXPECT_TRUE(genesis.merkle_ok());
}

TEST(WorkloadGenerator, MakeGenesisTwiceThrows) {
  WorkloadGenerator gen;
  (void)gen.make_genesis();
  EXPECT_THROW((void)gen.make_genesis(), std::logic_error);
}

TEST(WorkloadGenerator, NoSpendablesBeforeConfirm) {
  WorkloadGenerator gen;
  (void)gen.make_genesis();
  // Genesis not confirmed yet → nothing spendable.
  EXPECT_FALSE(gen.next_tx().has_value());
}

TEST(WorkloadGenerator, ProducesValidSignedTxsAfterConfirm) {
  WorkloadGenerator gen;
  const Block genesis = gen.make_genesis();
  gen.confirm(genesis);
  Validator v;
  for (int i = 0; i < 50; ++i) {
    const auto tx = gen.next_tx();
    ASSERT_TRUE(tx.has_value());
    EXPECT_TRUE(v.check_tx_stateless(*tx)) << i;
  }
}

TEST(WorkloadGenerator, NeverDoubleSpends) {
  WorkloadGenerator gen;
  const Block genesis = gen.make_genesis();
  gen.confirm(genesis);
  std::unordered_set<OutPoint, OutPointHasher> spent;
  for (const Transaction& tx : gen.batch(100)) {
    for (const TxInput& in : tx.inputs()) {
      EXPECT_TRUE(spent.insert(in.prevout).second) << "double spend";
    }
  }
}

TEST(WorkloadGenerator, MaturityDelaysSpendability) {
  WorkloadConfig cfg;
  cfg.wallet_count = 2;
  cfg.genesis_outputs_per_wallet = 1;
  cfg.maturity = 2;
  WorkloadGenerator gen(cfg);
  const Block genesis = gen.make_genesis();
  gen.confirm(genesis);  // maturing: [genesis]
  EXPECT_FALSE(gen.next_tx().has_value());
  gen.confirm(Block::assemble(genesis.hash(), 1, 0, {Transaction::coinbase(
                                                        KeyPair::from_seed(0).pub, 1, 1)}));
  EXPECT_FALSE(gen.next_tx().has_value());  // still maturing
  gen.confirm(Block::assemble(genesis.hash(), 2, 0, {Transaction::coinbase(
                                                        KeyPair::from_seed(0).pub, 1, 2)}));
  EXPECT_TRUE(gen.next_tx().has_value());  // genesis outputs matured
}

TEST(ChainGenerator, BuildsRequestedLength) {
  ChainGenConfig cfg;
  cfg.blocks = 10;
  cfg.txs_per_block = 5;
  ChainGenerator gen(cfg);
  const Chain chain = gen.generate();
  EXPECT_EQ(chain.size(), 11u);  // genesis + 10
  EXPECT_EQ(chain.height(), 10u);
}

TEST(ChainGenerator, EveryBlockValidatesAgainstReplayedState) {
  ChainGenConfig cfg;
  cfg.blocks = 20;
  cfg.txs_per_block = 10;
  ChainGenerator gen(cfg);
  const Chain chain = gen.generate();

  // Replay: genesis outputs seed the state, then each block must pass the
  // full validator.
  UtxoSet utxo;
  for (const Transaction& tx : chain.at_height(0).txs()) utxo.apply_tx(tx, 0);
  Validator v;
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    const auto r = v.validate_and_apply(chain.at_height(h), chain.at_height(h - 1).hash(), h,
                                        utxo);
    ASSERT_TRUE(r.valid) << "height " << h << ": " << r.reason;
  }
}

TEST(ChainGenerator, BlocksCarryCoinbasePlusWorkload) {
  ChainGenConfig cfg;
  cfg.blocks = 3;
  cfg.txs_per_block = 7;
  ChainGenerator gen(cfg);
  const Chain chain = gen.generate();
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    const Block& b = chain.at_height(h);
    EXPECT_TRUE(b.txs().front().is_coinbase());
    EXPECT_EQ(b.txs().size(), 8u) << h;
  }
}

TEST(ChainGenerator, DeterministicForSeed) {
  ChainGenConfig cfg;
  cfg.blocks = 5;
  cfg.workload.seed = 777;
  const Chain a = ChainGenerator(cfg).generate();
  const Chain b = ChainGenerator(cfg).generate();
  EXPECT_EQ(a.tip().hash(), b.tip().hash());
}

TEST(ChainGenerator, DifferentSeedsDifferentChains) {
  ChainGenConfig a_cfg, b_cfg;
  a_cfg.blocks = b_cfg.blocks = 3;
  a_cfg.workload.seed = 1;
  b_cfg.workload.seed = 2;
  EXPECT_NE(ChainGenerator(a_cfg).generate().tip().hash(),
            ChainGenerator(b_cfg).generate().tip().hash());
}

TEST(Chain, TotalBytesAccumulates) {
  ChainGenConfig cfg;
  cfg.blocks = 4;
  const Chain chain = ChainGenerator(cfg).generate();
  std::uint64_t manual = 0;
  for (const Block& b : chain.blocks()) manual += b.serialized_size();
  EXPECT_EQ(chain.total_bytes(), manual);
}

TEST(Chain, LookupByHashAndHeight) {
  ChainGenConfig cfg;
  cfg.blocks = 3;
  const Chain chain = ChainGenerator(cfg).generate();
  const Block& b2 = chain.at_height(2);
  EXPECT_EQ(chain.by_hash(b2.hash()), &b2);
  EXPECT_TRUE(chain.contains(b2.hash()));
  EXPECT_EQ(chain.by_hash(Hash256{}), nullptr);
  EXPECT_THROW((void)chain.at_height(99), std::out_of_range);
}

TEST(Chain, AppendRejectsNonExtending) {
  ChainGenConfig cfg;
  cfg.blocks = 2;
  ChainGenerator gen(cfg);
  Chain chain = gen.generate();
  const Block bad = Block::assemble(Hash256{}, chain.height() + 1, 0,
                                    {Transaction::coinbase(KeyPair::from_seed(0).pub, 1, 1)});
  EXPECT_THROW(chain.append(bad), std::logic_error);
}

TEST(Chain, GenesisMustBeHeightZero) {
  const Block not_genesis = Block::assemble(Hash256{}, 3, 0,
                                            {Transaction::coinbase(KeyPair::from_seed(0).pub, 1, 1)});
  EXPECT_THROW(Chain c(not_genesis), std::invalid_argument);
}

}  // namespace
}  // namespace ici
