#include "ici/config.h"

#include <gtest/gtest.h>

namespace ici::core {
namespace {

TEST(IciConfig, DefaultsAreValid) {
  IciConfig cfg;
  std::string why;
  EXPECT_TRUE(cfg.valid(&why)) << why;
}

TEST(IciConfig, RejectsZeroClusters) {
  IciConfig cfg;
  cfg.cluster_count = 0;
  std::string why;
  EXPECT_FALSE(cfg.valid(&why));
  EXPECT_NE(why.find("cluster_count"), std::string::npos);
}

TEST(IciConfig, RejectsZeroReplication) {
  IciConfig cfg;
  cfg.replication = 0;
  EXPECT_FALSE(cfg.valid());
}

TEST(IciConfig, RejectsBadQuorum) {
  IciConfig cfg;
  cfg.vote_quorum = 0.0;
  EXPECT_FALSE(cfg.valid());
  cfg.vote_quorum = 1.5;
  EXPECT_FALSE(cfg.valid());
  cfg.vote_quorum = 1.0;
  EXPECT_TRUE(cfg.valid());
}

TEST(IciConfig, RejectsUnknownClustering) {
  IciConfig cfg;
  cfg.clustering = "voronoi";
  std::string why;
  EXPECT_FALSE(cfg.valid(&why));
  EXPECT_NE(why.find("clustering"), std::string::npos);
  for (const char* ok : {"kmeans", "random", "grid"}) {
    cfg.clustering = ok;
    EXPECT_TRUE(cfg.valid()) << ok;
  }
}

TEST(IciConfig, ValidWorksWithoutWhy) {
  IciConfig cfg;
  cfg.cluster_count = 0;
  EXPECT_FALSE(cfg.valid(nullptr));
}

}  // namespace
}  // namespace ici::core
