#include "baseline/pruned.h"

#include <gtest/gtest.h>

#include "chain/workload.h"

namespace ici::baseline {
namespace {

Chain make_chain(std::size_t blocks = 20) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 6;
  return ChainGenerator(cfg).generate();
}

TEST(Pruned, KeepsOnlyWindowedBodies) {
  const Chain chain = make_chain(20);
  PrunedConfig cfg;
  cfg.window = 5;
  PrunedNetwork net(cfg);
  net.preload_chain(chain);

  const PrunedNode& node = net.node();
  EXPECT_EQ(node.store().block_count(), 5u);
  EXPECT_EQ(node.store().header_count(), chain.size());  // headers all kept
  // Exactly the newest 5 bodies.
  for (std::uint64_t h = 0; h <= chain.height(); ++h) {
    EXPECT_EQ(node.store().has_block(chain.at_height(h).hash()), h > chain.height() - 5)
        << "height " << h;
  }
}

TEST(Pruned, UtxoSnapshotMatchesReplay) {
  const Chain chain = make_chain(12);
  PrunedConfig cfg;
  cfg.window = 3;
  PrunedNetwork net(cfg);
  net.preload_chain(chain);

  UtxoSet expected;
  for (const Block& b : chain.blocks()) {
    for (const Transaction& tx : b.txs()) expected.apply_tx(tx, b.header().height);
  }
  EXPECT_EQ(net.node().utxo().size(), expected.size());
  EXPECT_EQ(net.node().utxo().total_value(), expected.total_value());
}

TEST(Pruned, StorageBoundedByWindow) {
  const Chain short_chain = make_chain(10);
  const Chain long_chain = make_chain(40);
  PrunedConfig cfg;
  cfg.window = 8;

  PrunedNetwork a(cfg), b(cfg);
  a.preload_chain(short_chain);
  b.preload_chain(long_chain);
  // Body bytes stay windowed; headers and snapshot grow slowly.
  EXPECT_EQ(a.node().store().block_count(), 8u);
  EXPECT_EQ(b.node().store().block_count(), 8u);
  EXPECT_LT(static_cast<double>(b.per_node_bytes()),
            static_cast<double>(long_chain.total_bytes()) * 0.8)
      << "pruned node must store far less than the chain";
}

TEST(Pruned, HistoricalAvailabilityDecaysWithChainGrowth) {
  PrunedConfig cfg;
  cfg.window = 10;
  const Chain chain = make_chain(40);
  PrunedNetwork net(cfg);
  net.preload_chain(chain);
  // Only window/chain blocks remain servable anywhere.
  EXPECT_NEAR(net.historical_availability(chain), 10.0 / 41.0, 1e-9);
}

TEST(Pruned, WindowLargerThanChainKeepsEverything) {
  PrunedConfig cfg;
  cfg.window = 100;
  const Chain chain = make_chain(10);
  PrunedNetwork net(cfg);
  net.preload_chain(chain);
  EXPECT_DOUBLE_EQ(net.historical_availability(chain), 1.0);
  EXPECT_EQ(net.node().store().block_count(), chain.size());
}

TEST(Pruned, BootstrapBytesBelowFullChain) {
  PrunedConfig cfg;
  cfg.window = 10;
  const Chain chain = make_chain(40);
  PrunedNetwork net(cfg);
  net.preload_chain(chain);
  EXPECT_LT(net.bootstrap_bytes(), chain.total_bytes());
  EXPECT_GT(net.bootstrap_bytes(), 0u);
}

TEST(Pruned, TotalScalesWithNodeCount) {
  PrunedConfig cfg;
  cfg.window = 5;
  cfg.node_count = 7;
  const Chain chain = make_chain(12);
  PrunedNetwork net(cfg);
  net.preload_chain(chain);
  EXPECT_EQ(net.total_bytes(), net.per_node_bytes() * 7);
}

}  // namespace
}  // namespace ici::baseline
