#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "common/hex.h"

namespace ici {
namespace {

std::string hmac_hex(const Bytes& key, const Bytes& msg) {
  const Digest256 d = hmac_sha256(ByteSpan(key.data(), key.size()),
                                  ByteSpan(msg.data(), msg.size()));
  return to_hex(ByteSpan(d.data(), d.size()));
}

Bytes str_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(key, str_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_hex(str_bytes("Jefe"), str_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);  // key longer than block size: hashed first
  EXPECT_EQ(hmac_hex(key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  EXPECT_NE(hmac_hex(str_bytes("k1"), str_bytes("m")),
            hmac_hex(str_bytes("k2"), str_bytes("m")));
}

TEST(Hmac, EmptyInputsWork) {
  EXPECT_EQ(hmac_hex({}, {}).size(), 64u);
}

}  // namespace
}  // namespace ici
