// Transaction location service: txid → (block, height) answered by the
// cluster member that indexes the tx for free from commit deltas.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"
#include "spv/proof.h"

namespace ici::core {
namespace {

struct LiveRig {
  LiveRig() {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 10;
    gen = std::make_unique<ChainGenerator>(ccfg);
    IciNetworkConfig ncfg;
    ncfg.node_count = 20;
    ncfg.ici.cluster_count = 2;
    net = std::make_unique<IciNetwork>(ncfg);
    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
    for (int i = 0; i < 5; ++i) {
      chain->append(gen->next_block(*chain));
      EXPECT_GT(net->disseminate_and_settle(chain->tip()), 0u);
    }
  }
  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(TxLocate, FindsEveryCommittedTxFromEveryCluster) {
  LiveRig rig;
  for (std::uint64_t h = 1; h <= rig.chain->height(); ++h) {
    const Block& block = rig.chain->at_height(h);
    for (const Transaction& tx : block.txs()) {
      // Ask from a node in each cluster.
      for (std::size_t c = 0; c < rig.net->directory().cluster_count(); ++c) {
        const auto asker = rig.net->directory().members(c).front();
        bool called = false;
        rig.net->node(asker).locate_tx(
            tx.txid(), [&](bool found, Hash256 hash, std::uint64_t height) {
              called = true;
              EXPECT_TRUE(found) << "height " << h;
              EXPECT_EQ(hash, block.hash());
              EXPECT_EQ(height, h);
            });
        rig.net->settle();
        EXPECT_TRUE(called);
      }
    }
  }
}

TEST(TxLocate, UnknownTxidNotFound) {
  LiveRig rig;
  bool called = false;
  rig.net->node(0).locate_tx(Hash256::tagged("nope", {}),
                             [&](bool found, Hash256, std::uint64_t) {
                               called = true;
                               EXPECT_FALSE(found);
                             });
  rig.net->settle();
  EXPECT_TRUE(called);
}

TEST(TxLocate, GenesisTxsIndexed) {
  LiveRig rig;
  const Hash256 txid = rig.chain->at_height(0).txs()[0].txid();
  bool called = false;
  rig.net->node(3).locate_tx(txid, [&](bool found, Hash256 hash, std::uint64_t height) {
    called = true;
    EXPECT_TRUE(found);
    EXPECT_EQ(hash, rig.chain->at_height(0).hash());
    EXPECT_EQ(height, 0u);
  });
  rig.net->settle();
  EXPECT_TRUE(called);
}

TEST(TxLocate, LocateAndProveEndToEnd) {
  LiveRig rig;
  const Block& block = rig.chain->at_height(3);
  const Transaction& tx = block.txs()[2];

  bool got = false;
  rig.net->node(1).locate_and_prove(
      tx.txid(), [&](std::optional<spv::TxInclusionProof> proof, sim::SimTime elapsed) {
        ASSERT_TRUE(proof.has_value());
        EXPECT_EQ(proof->txid, tx.txid());
        EXPECT_EQ(proof->height, 3u);
        EXPECT_TRUE(spv::verify_proof(*proof, block.header()));
        EXPECT_GT(elapsed, 0u);
        got = true;
      });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(TxLocate, LocateAndProveUnknownTxMisses) {
  LiveRig rig;
  bool called = false;
  rig.net->node(1).locate_and_prove(Hash256::tagged("ghost", {}),
                                    [&](std::optional<spv::TxInclusionProof> proof,
                                        sim::SimTime) {
                                      called = true;
                                      EXPECT_FALSE(proof.has_value());
                                    });
  rig.net->settle();
  EXPECT_TRUE(called);
}

TEST(TxLocate, PreloadedIndexWorks) {
  ChainGenConfig ccfg;
  ccfg.blocks = 6;
  ccfg.txs_per_block = 5;
  const Chain chain = ChainGenerator(ccfg).generate();

  IciNetworkConfig cfg;
  cfg.node_count = 16;
  cfg.ici.cluster_count = 2;
  IciNetwork net(cfg);
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain, /*build_tx_index=*/true);

  const Block& block = chain.at_height(4);
  bool called = false;
  net.node(0).locate_tx(block.txs()[1].txid(),
                        [&](bool found, Hash256 hash, std::uint64_t height) {
                          called = true;
                          EXPECT_TRUE(found);
                          EXPECT_EQ(hash, block.hash());
                          EXPECT_EQ(height, 4u);
                        });
  net.settle();
  EXPECT_TRUE(called);
}

TEST(TxLocate, OfflineOwnerTimesOutGracefully) {
  LiveRig rig;
  const Block& block = rig.chain->at_height(2);
  const Hash256 txid = block.txs()[1].txid();

  // Find the owner in cluster 0 and take it offline; ask from another
  // member of cluster 0.
  const auto owner = rig.net->utxo_owner(OutPoint{txid, 0}, 0);
  rig.net->network().set_online(owner, false);
  rig.net->directory().set_online(owner, false);

  cluster::NodeId asker = cluster::kNoNode;
  for (auto id : rig.net->directory().members(0)) {
    if (id != owner) {
      asker = id;
      break;
    }
  }
  ASSERT_NE(asker, cluster::kNoNode);
  bool called = false;
  rig.net->node(asker).locate_tx(txid, [&](bool found, Hash256, std::uint64_t) {
    called = true;
    EXPECT_FALSE(found);  // owner dark → graceful timeout
  });
  rig.net->settle();
  EXPECT_TRUE(called);
  EXPECT_GT(rig.net->metrics().counter_value("locate.timeouts"), 0u);
}

}  // namespace
}  // namespace ici::core
