#include "cluster/assignment.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "common/stats.h"

namespace ici::cluster {
namespace {

std::vector<NodeInfo> members(std::size_t n) {
  std::vector<NodeInfo> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({static_cast<NodeId>(i), {0, 0}, 1.0});
  return out;
}

Hash256 block(std::uint64_t i) {
  ByteWriter w;
  w.u64(i);
  return Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
}

TEST(Rendezvous, DeterministicAcrossCalls) {
  RendezvousAssigner a;
  const auto m = members(10);
  EXPECT_EQ(a.storers(block(1), 1, m, 3), a.storers(block(1), 1, m, 3));
}

TEST(Rendezvous, OrderOfMembersIrrelevant) {
  RendezvousAssigner a;
  auto m = members(10);
  const auto ref = a.storers(block(5), 5, m, 2);
  std::reverse(m.begin(), m.end());
  EXPECT_EQ(a.storers(block(5), 5, m, 2), ref);
}

TEST(Rendezvous, ReturnsDistinctStorers) {
  RendezvousAssigner a;
  const auto m = members(8);
  for (std::uint64_t b = 0; b < 50; ++b) {
    const auto s = a.storers(block(b), b, m, 3);
    std::unordered_set<NodeId> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 3u);
  }
}

TEST(Rendezvous, ClampsReplicationToClusterSize) {
  RendezvousAssigner a;
  EXPECT_EQ(a.storers(block(1), 1, members(3), 10).size(), 3u);
}

TEST(Rendezvous, EmptyClusterThrows) {
  RendezvousAssigner a;
  EXPECT_THROW(a.storers(block(1), 1, {}, 1), std::invalid_argument);
}

TEST(Rendezvous, LoadBalancesAcrossBlocks) {
  RendezvousAssigner a;
  const auto m = members(10);
  std::map<NodeId, int> load;
  constexpr int kBlocks = 5000;
  for (std::uint64_t b = 0; b < kBlocks; ++b) load[a.storers(block(b), b, m, 1)[0]]++;
  // Expected 500 per node; accept ±30%.
  for (const auto& [id, count] : load) {
    EXPECT_GT(count, 350) << "node " << id;
    EXPECT_LT(count, 650) << "node " << id;
  }
}

TEST(Rendezvous, MinimalDisruptionOnMemberRemoval) {
  RendezvousAssigner a;
  const auto full = members(10);
  auto reduced = full;
  reduced.erase(reduced.begin() + 3);  // node 3 leaves

  constexpr int kBlocks = 2000;
  int moved = 0, was_on_removed = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    const NodeId before = a.storers(block(b), b, full, 1)[0];
    const NodeId after = a.storers(block(b), b, reduced, 1)[0];
    if (before == 3) {
      ++was_on_removed;
      EXPECT_NE(after, 3u);
    } else {
      // Blocks not on the departed node must not move at all.
      EXPECT_EQ(before, after) << "block " << b << " moved unnecessarily";
      if (before != after) ++moved;
    }
  }
  EXPECT_EQ(moved, 0);
  EXPECT_GT(was_on_removed, kBlocks / 20);  // ~10% expected
}

TEST(Rendezvous, CapacityWeightingSkewsProportionally) {
  RendezvousAssigner weighted(/*capacity_weighted=*/true);
  std::vector<NodeInfo> m = members(4);
  m[0].capacity = 3.0;  // should win ~3x the blocks of the others

  std::map<NodeId, int> load;
  constexpr int kBlocks = 6000;
  for (std::uint64_t b = 0; b < kBlocks; ++b) load[weighted.storers(block(b), b, m, 1)[0]]++;
  // Expected shares: 3/6 for node 0, 1/6 each for others.
  EXPECT_NEAR(load[0] / static_cast<double>(kBlocks), 0.5, 0.05);
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_NEAR(load[id] / static_cast<double>(kBlocks), 1.0 / 6.0, 0.04);
  }
}

TEST(Rendezvous, UnweightedIgnoresCapacity) {
  RendezvousAssigner unweighted(false);
  std::vector<NodeInfo> m = members(4);
  m[0].capacity = 100.0;
  std::map<NodeId, int> load;
  constexpr int kBlocks = 4000;
  for (std::uint64_t b = 0; b < kBlocks; ++b) load[unweighted.storers(block(b), b, m, 1)[0]]++;
  EXPECT_NEAR(load[0] / static_cast<double>(kBlocks), 0.25, 0.05);
}

TEST(RendezvousWeight, InUnitInterval) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double w = rendezvous_weight(block(i), static_cast<NodeId>(i % 7));
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(RoundRobin, CyclesWithHeight) {
  RoundRobinAssigner rr;
  const auto m = members(5);
  for (std::uint64_t h = 0; h < 20; ++h) {
    const auto s = rr.storers(block(h), h, m, 1);
    EXPECT_EQ(s[0], static_cast<NodeId>(h % 5));
  }
}

TEST(RoundRobin, ReplicasAreConsecutive) {
  RoundRobinAssigner rr;
  const auto s = rr.storers(block(1), 3, members(5), 3);
  EXPECT_EQ(s, (std::vector<NodeId>{3, 4, 0}));
}

TEST(RoundRobin, EmptyThrows) {
  RoundRobinAssigner rr;
  EXPECT_THROW(rr.storers(block(1), 0, {}, 1), std::invalid_argument);
}

TEST(Assigners, BalanceQualityRendezvousVsRoundRobin) {
  // Both should balance well with sequential heights; rendezvous must stay
  // balanced even when heights collide (e.g. per-cluster restarts).
  RendezvousAssigner rv;
  const auto m = members(8);
  RunningStat loads;
  std::map<NodeId, int> count;
  for (std::uint64_t b = 0; b < 4000; ++b) count[rv.storers(block(b), 0, m, 1)[0]]++;
  for (const auto& [id, c] : count) {
    (void)id;
    loads.add(c);
  }
  EXPECT_LT(loads.cv(), 0.15);
}

}  // namespace
}  // namespace ici::cluster
