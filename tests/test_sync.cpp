// Streaming bulk-sync protocol tests (docs/BOOTSTRAP.md): determinism,
// crash/resume equivalence, closed-form differential byte accounting, and
// multi-peer pull spread.
#include <gtest/gtest.h>

#include "baseline/fullrep.h"
#include "chain/workload.h"
#include "ici/bootstrap.h"
#include "sim/faults.h"
#include "strategy/strategy.h"

namespace ici {
namespace {

Chain make_test_chain(std::size_t blocks, std::size_t txs = 8) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = txs;
  return ChainGenerator(cfg).generate();
}

struct IciRig {
  explicit IciRig(const Chain& chain, std::size_t nodes = 20, std::size_t clusters = 2,
                  double serve_rate_bps = 0.0) {
    core::IciNetworkConfig cfg;
    cfg.node_count = nodes;
    cfg.ici.cluster_count = clusters;
    cfg.sync_serve_rate_bps = serve_rate_bps;
    net = std::make_unique<core::IciNetwork>(cfg);
    net->init_with_genesis(chain.at_height(0));
    net->preload_chain(chain);
  }
  std::unique_ptr<core::IciNetwork> net;
};

struct FullRepRig {
  explicit FullRepRig(const Chain& chain, std::size_t nodes = 16) {
    baseline::FullRepConfig cfg;
    cfg.node_count = nodes;
    cfg.validate = false;
    net = std::make_unique<baseline::FullRepNetwork>(cfg);
    net->init_with_genesis(chain.at_height(0));
    net->preload_chain(chain);
  }
  std::unique_ptr<baseline::FullRepNetwork> net;
};

// Two identical fresh rigs at the same seed must produce bit-identical
// joins: same bytes, same timing, same per-peer attribution, in the same
// order (the determinism contract of docs/BOOTSTRAP.md).
TEST(Sync, BitIdenticalReruns) {
  const Chain chain = make_test_chain(16);
  core::BootstrapReport a, b;
  {
    IciRig rig(chain);
    a = core::Bootstrapper::join(*rig.net, {50, 50});
  }
  {
    IciRig rig(chain);
    b = core::Bootstrapper::join(*rig.net, {50, 50});
  }
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.sync.frontier_us, b.sync.frontier_us);
  EXPECT_EQ(a.sync.ranges_committed, b.sync.ranges_committed);
  EXPECT_EQ(a.sync.headers_committed, b.sync.headers_committed);
  ASSERT_EQ(a.sync.by_peer.size(), b.sync.by_peer.size());
  for (std::size_t i = 0; i < a.sync.by_peer.size(); ++i) {
    EXPECT_EQ(a.sync.by_peer[i].peer, b.sync.by_peer[i].peer);
    EXPECT_EQ(a.sync.by_peer[i].bytes, b.sync.by_peer[i].bytes);
    EXPECT_EQ(a.sync.by_peer[i].responses, b.sync.by_peer[i].responses);
  }
}

// A joiner crashed mid-sync by a FaultPlan window must resume from the
// driver-owned checkpoint and end in the same final verified state
// (bit-identical storage counters) as an uninterrupted join.
TEST(Sync, ResumeAfterCrashMatchesUninterrupted) {
  const Chain chain = make_test_chain(24);

  IciRig clean(chain);
  const auto clean_report = core::Bootstrapper::join(*clean.net, {50, 50});
  ASSERT_TRUE(clean_report.complete);
  const auto& clean_node = clean.net->node(clean_report.joiner);
  const sim::SimTime t_clean = clean_report.sync.time_to_synced_us;
  ASSERT_GT(t_clean, 0u);

  IciRig faulted(chain);
  const cluster::NodeId joiner =
      core::Bootstrapper::add_joiner_nearest(*faulted.net, {50, 50});
  const sim::SimTime now = faulted.net->simulator().now();
  sim::FaultPlan plan;
  plan.crashes.push_back(
      sim::CrashWindow{joiner, now + t_clean * 2 / 5, now + t_clean * 9 / 10});
  faulted.net->start_faults(plan);

  const auto resumed = core::Bootstrapper::run(*faulted.net, joiner, sync::SyncConfig{});
  ASSERT_TRUE(resumed.complete);
  EXPECT_GE(resumed.sync.resume_count, 1u) << "crash window missed the sync";

  const auto& resumed_node = faulted.net->node(joiner);
  EXPECT_EQ(resumed_node.store().header_count(), clean_node.store().header_count());
  EXPECT_EQ(resumed_node.store().block_count(), clean_node.store().block_count());
  EXPECT_EQ(resumed_node.store().body_bytes(), clean_node.store().body_bytes());
  EXPECT_EQ(resumed_node.shards().total_bytes(), clean_node.shards().total_bytes());
  EXPECT_EQ(resumed.sync.headers_committed, clean_report.sync.headers_committed);
  EXPECT_EQ(resumed.sync.bodies_committed, clean_report.sync.bodies_committed);
}

// Serve-side rate limiting (--sync-serve-rate): a join against throttled
// servers must be delayed (sync.serve_throttled fires, the join takes
// longer in sim time) but land in the exact same verified state — same
// bytes, same ranges, same final store — as the unthrottled join. The
// token-bucket delay only reorders *when* responses leave, never what they
// contain.
TEST(Sync, ThrottledJoinLandsBitIdentical) {
  const Chain chain = make_test_chain(16);

  IciRig clean(chain);
  const auto clean_report = core::Bootstrapper::join(*clean.net, {50, 50});
  ASSERT_TRUE(clean_report.complete);
  const auto& clean_node = clean.net->node(clean_report.joiner);

  // 1 MB/s of sim time: every response is delayed by its serialization
  // cost (tens of ms for a range) while staying far inside the sync
  // timeouts, so nothing is retried — only deferred.
  IciRig throttled(chain, 20, 2, /*serve_rate_bps=*/1'000'000.0);
  const auto throttled_report = core::Bootstrapper::join(*throttled.net, {50, 50});
  ASSERT_TRUE(throttled_report.complete);
  const auto& throttled_node = throttled.net->node(throttled_report.joiner);

  const auto& counters = throttled.net->metrics().counters();
  const auto it = counters.find("sync.serve_throttled");
  ASSERT_TRUE(it != counters.end()) << "throttle never fired";
  EXPECT_GT(it->second.value(), 0u);
  EXPECT_GT(throttled_report.sync.time_to_synced_us, clean_report.sync.time_to_synced_us)
      << "throttled join should be slower in sim time";

  // Same payload, same final verified state.
  EXPECT_EQ(throttled_report.bytes_downloaded, clean_report.bytes_downloaded);
  EXPECT_EQ(throttled_report.sync.ranges_committed, clean_report.sync.ranges_committed);
  EXPECT_EQ(throttled_report.sync.headers_committed, clean_report.sync.headers_committed);
  EXPECT_EQ(throttled_report.sync.bodies_committed, clean_report.sync.bodies_committed);
  EXPECT_EQ(throttled_node.store().header_count(), clean_node.store().header_count());
  EXPECT_EQ(throttled_node.store().block_count(), clean_node.store().block_count());
  EXPECT_EQ(throttled_node.store().body_bytes(), clean_node.store().body_bytes());
  EXPECT_EQ(throttled_node.shards().total_bytes(), clean_node.shards().total_bytes());

  // And the throttled run itself is deterministic: an identical rig reruns
  // to the same timing and per-peer attribution, byte for byte.
  IciRig rerun(chain, 20, 2, /*serve_rate_bps=*/1'000'000.0);
  const auto rerun_report = core::Bootstrapper::join(*rerun.net, {50, 50});
  ASSERT_TRUE(rerun_report.complete);
  EXPECT_EQ(rerun_report.elapsed_us, throttled_report.elapsed_us);
  EXPECT_EQ(rerun_report.bytes_downloaded, throttled_report.bytes_downloaded);
  ASSERT_EQ(rerun_report.sync.by_peer.size(), throttled_report.sync.by_peer.size());
  for (std::size_t i = 0; i < rerun_report.sync.by_peer.size(); ++i) {
    EXPECT_EQ(rerun_report.sync.by_peer[i].peer, throttled_report.sync.by_peer[i].peer);
    EXPECT_EQ(rerun_report.sync.by_peer[i].bytes, throttled_report.sync.by_peer[i].bytes);
  }
}

// Differential test against the closed-form byte accounting the old E05
// used: with no faults, a full-replication joiner's verified payload equals
// headers-for-the-whole-chain plus every body, exactly.
TEST(Sync, FullRepPayloadMatchesClosedForm) {
  const Chain chain = make_test_chain(20);
  FullRepRig rig(chain);
  const auto report = rig.net->bootstrap({50, 50});
  ASSERT_TRUE(report.complete);

  const std::uint64_t header_closed_form =
      static_cast<std::uint64_t>(chain.size()) * BlockHeader::kWireSize;
  std::uint64_t body_closed_form = 0;
  for (const Block& b : chain.blocks()) body_closed_form += b.serialized_size();

  EXPECT_EQ(report.sync.header_payload_bytes, header_closed_form);
  EXPECT_EQ(report.sync.body_payload_bytes, body_closed_form);
  EXPECT_EQ(report.sync.headers_committed, chain.size());
  EXPECT_EQ(report.bodies_fetched, chain.size());
  // Wire bytes = payload + framing, so the protocol total must dominate the
  // closed form but stay within the per-message overhead budget.
  EXPECT_GE(report.bytes_downloaded, header_closed_form + body_closed_form);
}

// ICI joiner: all headers, but only the bodies the placement function
// assigns to it — the paper's bootstrap-saving claim, measured.
TEST(Sync, IciPayloadMatchesAssignment) {
  const Chain chain = make_test_chain(20);
  IciRig rig(chain);
  const auto report = core::Bootstrapper::join(*rig.net, {50, 50});
  ASSERT_TRUE(report.complete);

  EXPECT_EQ(report.sync.header_payload_bytes,
            static_cast<std::uint64_t>(chain.size()) * BlockHeader::kWireSize);

  std::uint64_t assigned_bodies = 0;
  for (std::uint64_t h = 0; h <= chain.height(); ++h) {
    const Hash256 hash = chain.at_height(h).hash();
    const auto storers = rig.net->storers_of(hash, h, report.cluster, false);
    if (std::find(storers.begin(), storers.end(), report.joiner) != storers.end())
      ++assigned_bodies;
  }
  EXPECT_EQ(report.sync.bodies_committed, assigned_bodies);
  EXPECT_EQ(report.bodies_fetched, assigned_bodies);
}

// The windowed pull must actually spread load: with several responsive
// peers at the target height, more than one peer serves bytes.
TEST(Sync, PullsFromMultiplePeers) {
  const Chain chain = make_test_chain(32);
  FullRepRig rig(chain);
  const auto report = rig.net->bootstrap({50, 50});
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.sync.peers_used, 1u);
  std::size_t serving = 0;
  for (const auto& p : report.sync.by_peer)
    if (p.bytes > 0) ++serving;
  EXPECT_GT(serving, 1u);
}

// Every strategy exposes bootstrap_join; the simulated ones go through the
// protocol, pruned stays closed-form (protocol=false).
TEST(Sync, AllStrategiesJoin) {
  const Chain chain = make_test_chain(12);
  core::StrategyConfig cfg;
  cfg.node_count = 20;
  cfg.groups = 2;
  cfg.fullrep_validate = false;
  for (const std::string_view name : core::strategy_names()) {
    auto s = core::make_strategy(name, cfg);
    s->init(chain.at_height(0));
    s->preload(chain);
    const core::JoinReport r = s->bootstrap_join({50, 50}, sync::SyncConfig{});
    EXPECT_TRUE(r.complete) << name;
    EXPECT_GT(r.bytes_downloaded, 0u) << name;
    EXPECT_EQ(r.protocol, name != "pruned") << name;
    if (r.protocol) {
      EXPECT_GT(r.sync.ranges_committed, 0u) << name;
      EXPECT_EQ(r.sync.resume_count, 0u) << name;
    }
  }
}

}  // namespace
}  // namespace ici
