#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ici {
namespace {

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), std::invalid_argument);
}

TEST(Table, PrintsHeaderAndRows) {
  Table t({"name", "count"});
  t.row({"alpha", "10"});
  t.row({"beta", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, WidensColumnsToFitCells) {
  Table t({"h"});
  t.row({"a-rather-long-cell"});
  std::ostringstream os;
  t.print(os);
  // Every line should be at least as wide as the longest cell.
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_GE(line.size(), std::string("a-rather-long-cell").size());
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"col1", "col2"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("col1"), std::string::npos);
}

}  // namespace
}  // namespace ici
