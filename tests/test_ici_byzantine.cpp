// Robustness against scripted byzantine members: reject-voters below the
// quorum threshold cannot block commits, omission faults are tolerated, and
// corrupt servers are detected and routed around.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(std::size_t nodes = 24, std::size_t clusters = 2) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 12;
    gen = std::make_unique<ChainGenerator>(ccfg);

    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    net = std::make_unique<IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  /// Marks ~fraction of each cluster's members with `profile`.
  void poison(double fraction, FaultProfile profile) {
    auto& dir = net->directory();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      const auto& members = dir.members(c);
      const auto count = static_cast<std::size_t>(fraction * static_cast<double>(members.size()));
      for (std::size_t i = 0; i < count; ++i) net->set_fault(members[i], profile);
    }
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(Byzantine, MinorityRejectVotersCannotBlockCommit) {
  Rig rig;
  rig.poison(0.25, FaultProfile{.vote_reject = true});
  const sim::SimTime latency = rig.step();
  EXPECT_GT(latency, 0u) << "commit must proceed with < 1/3 rejectors";
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 2u);
  EXPECT_GT(rig.net->metrics().counter_value("fault.votes_flipped"), 0u);
}

TEST(Byzantine, SupermajorityRejectorsBlockCommit) {
  Rig rig;
  rig.poison(0.5, FaultProfile{.vote_reject = true});
  const sim::SimTime latency = rig.step();
  EXPECT_EQ(latency, 0u) << "with 50% rejectors the 2/3 quorum is unreachable";
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("verify.rejected") +
                rig.net->metrics().counter_value("verify.aborted"),
            0u);
}

TEST(Byzantine, OmissionFaultsToleratedViaTimeout) {
  Rig rig;
  rig.poison(0.2, FaultProfile{.drop_slices = true});
  const sim::SimTime latency = rig.step();
  // Silent members mean the quorum check over `expected` fails initially;
  // the verify timeout then commits on the approvals that did arrive.
  EXPECT_GT(latency, 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 2u);
  EXPECT_GT(rig.net->metrics().counter_value("fault.slices_dropped"), 0u);
}

TEST(Byzantine, CorruptServerRoutedAroundWithReplication) {
  Rig rig;
  IciNetworkConfig cfg;
  cfg.node_count = 24;
  cfg.ici.cluster_count = 2;
  cfg.ici.replication = 2;  // two holders: one corrupt, one honest
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 12;
  ChainGenerator gen(ccfg);
  IciNetwork net(cfg);
  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  chain.append(gen.next_block(chain));
  ASSERT_GT(net.disseminate_and_settle(chain.tip()), 0u);

  const Hash256 hash = chain.tip().hash();
  const auto storers = net.storers_of(hash, 1, 0, false);
  ASSERT_EQ(storers.size(), 2u);
  net.set_fault(storers[0], FaultProfile{.corrupt_serves = true});
  net.set_fault(storers[1], FaultProfile{.corrupt_serves = true});
  // Un-poison the second so exactly one honest holder remains.
  net.set_fault(storers[1], FaultProfile{});

  // A non-holder fetch must succeed via the honest replica even when the
  // corrupt one answers first.
  cluster::NodeId requester = cluster::kNoNode;
  for (auto id : net.directory().members(0)) {
    if (id != storers[0] && id != storers[1]) {
      requester = id;
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  net.node(requester).fetch_block(hash, 1, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash && r.block->merkle_ok();
  });
  net.settle();
  EXPECT_TRUE(got);
}

TEST(Byzantine, CorruptSoleHolderRoutedAroundViaSiblingCluster) {
  // With cross-cluster fallback (default), the fetch detects the tampered
  // body from the corrupt in-cluster holder and retries a sibling cluster's
  // honest copy.
  Rig rig;
  ASSERT_GT(rig.step(), 0u);
  const Hash256 hash = rig.chain->tip().hash();
  const auto storers = rig.net->storers_of(hash, 1, 0, false);
  rig.net->set_fault(storers[0], FaultProfile{.corrupt_serves = true});

  cluster::NodeId requester = cluster::kNoNode;
  for (auto id : rig.net->directory().members(0)) {
    if (id != storers[0] && !rig.net->node(id).store().has_block(hash)) {
      requester = id;
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  rig.net->node(requester).fetch_block(hash, 1, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash && r.block->merkle_ok();
  });
  rig.net->settle();
  // Candidates are distance-sorted, so the corrupt holder may or may not be
  // contacted before an honest sibling; either way the fetch must succeed
  // with verified data (the detect-and-retry path itself is covered by
  // CorruptServerRoutedAroundWithReplication and the no-fallback test).
  EXPECT_TRUE(got) << "honest sibling-cluster copy must win";
}

TEST(Byzantine, CorruptSoleHolderCausesCleanMissWithoutFallback) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 12;
  ChainGenerator gen(ccfg);
  IciNetworkConfig cfg;
  cfg.node_count = 24;
  cfg.ici.cluster_count = 2;
  cfg.ici.cross_cluster_fallback = false;
  IciNetwork net(cfg);
  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  chain.append(gen.next_block(chain));
  ASSERT_GT(net.disseminate_and_settle(chain.tip()), 0u);

  const Hash256 hash = chain.tip().hash();
  const auto storers = net.storers_of(hash, 1, 0, false);
  net.set_fault(storers[0], FaultProfile{.corrupt_serves = true});

  cluster::NodeId requester = cluster::kNoNode;
  for (auto id : net.directory().members(0)) {
    if (id != storers[0] && !net.node(id).store().has_block(hash)) {
      requester = id;
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);
  bool called = false;
  bool hit = true;
  net.node(requester).fetch_block(hash, 1, [&](const FetchResult& r) {
    called = true;
    hit = r.block != nullptr;
    EXPECT_EQ(r.outcome, FetchOutcome::kNotFound);
  });
  net.settle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(hit) << "tampered data must never be accepted";
  EXPECT_GT(net.metrics().counter_value("fault.corrupt_serves"), 0u);
}

TEST(Byzantine, BogusChallengesAreDisprovenAndCommitProceeds) {
  // Byzantine rejectors challenge a perfectly valid transaction; the head
  // re-verifies it, records the challenge as bogus, and commits anyway.
  Rig rig;
  rig.poison(0.25, FaultProfile{.vote_reject = true});
  ASSERT_GT(rig.step(), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("fraud.bogus"), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("fraud.confirmed"), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.fraud_rejected"), 0u);
}

TEST(Byzantine, HonestChallengeVetoesInvalidBlockDespiteQuorum) {
  // A block with one invalid transaction: only the member holding that
  // slice can see the problem, and everyone else approves. The fraud proof
  // must veto the block even though approvals alone reach the 2/3 quorum.
  Rig rig;
  Block good = rig.gen->next_block(*rig.chain);
  std::vector<Transaction> txs = good.txs();
  const KeyPair key = KeyPair::from_seed(4242);
  Transaction phantom({TxInput{OutPoint{Hash256::tagged("void", {}), 0}, {}, {}}},
                      {TxOutput{7, key.pub}}, 123);
  phantom.sign_all_inputs(key);
  txs.push_back(std::move(phantom));
  const Block bad = Block::assemble(good.header().parent, good.header().height,
                                    good.header().timestamp_us, std::move(txs));

  EXPECT_EQ(rig.net->disseminate_and_settle(bad), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("fraud.confirmed"), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("verify.fraud_rejected"), 0u);
}

TEST(Byzantine, OverspendCaughtByChallenge) {
  // A tx spending a real output but emitting more value than it consumes.
  Rig rig;
  ASSERT_GT(rig.step(), 0u);  // block 1: creates spendable outputs

  Block good = rig.gen->next_block(*rig.chain);
  std::vector<Transaction> txs = good.txs();
  // Inflate the last non-coinbase tx's output value.
  for (std::size_t i = txs.size(); i-- > 1;) {
    if (txs[i].is_coinbase()) continue;
    std::vector<TxOutput> outs = txs[i].outputs();
    outs[0].value += 1'000'000'000;
    Transaction inflated(txs[i].inputs(), std::move(outs), txs[i].nonce());
    // Re-sign so the stateless check passes and only the value check fails.
    // (We cannot re-sign with the real owner's key here, so instead sign
    // with a fresh key — the recipient check then fails, which is equally
    // a stateful fraud the challenge must confirm.)
    inflated.sign_all_inputs(KeyPair::from_seed(777));
    txs[i] = std::move(inflated);
    break;
  }
  const Block bad = Block::assemble(good.header().parent, good.header().height,
                                    good.header().timestamp_us, std::move(txs));
  EXPECT_EQ(rig.net->disseminate_and_settle(bad), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("fraud.confirmed"), 0u);
}

TEST(Byzantine, FaultProfileAnyReflectsFlags) {
  EXPECT_FALSE(FaultProfile{}.any());
  EXPECT_TRUE((FaultProfile{.vote_reject = true}).any());
  EXPECT_TRUE((FaultProfile{.drop_slices = true}).any());
  EXPECT_TRUE((FaultProfile{.corrupt_serves = true}).any());
}

}  // namespace
}  // namespace ici::core
