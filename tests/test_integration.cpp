// Cross-system integration tests: the three network flavours processing the
// SAME ledger, verifying the paper's comparative claims hold structurally
// (storage ordering, communication ordering, bootstrap ordering).
#include <gtest/gtest.h>

#include "baseline/fullrep.h"
#include "baseline/rapidchain.h"
#include "chain/workload.h"
#include "ici/bootstrap.h"
#include "ici/network.h"
#include "storage/storage_meter.h"

namespace ici {
namespace {

Chain shared_chain(std::size_t blocks = 24, std::size_t txs = 10) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = txs;
  return ChainGenerator(cfg).generate();
}

TEST(Integration, StorageOrderingFullrepVsRapidchainVsIci) {
  const Chain chain = shared_chain();
  constexpr std::size_t kNodes = 40;

  baseline::FullRepConfig fr_cfg;
  fr_cfg.node_count = kNodes;
  fr_cfg.validate = false;
  baseline::FullRepNetwork fullrep(fr_cfg);
  fullrep.init_with_genesis(chain.at_height(0));
  fullrep.preload_chain(chain);

  baseline::RapidChainConfig rc_cfg;
  rc_cfg.node_count = kNodes;
  rc_cfg.committee_count = 4;
  baseline::RapidChainNetwork rapidchain(rc_cfg);
  rapidchain.init_with_genesis(chain.at_height(0));
  rapidchain.preload_chain(chain);

  core::IciNetworkConfig ici_cfg;
  ici_cfg.node_count = kNodes;
  ici_cfg.ici.cluster_count = 4;  // cluster size 10 > committee count 4
  core::IciNetwork ici(ici_cfg);
  ici.init_with_genesis(chain.at_height(0));
  ici.preload_chain(chain);

  const double fr = StorageMeter::snapshot(fullrep.stores()).mean_bytes;
  const double rc = StorageMeter::snapshot(rapidchain.stores()).mean_bytes;
  const double ic = StorageMeter::snapshot(ici.stores()).mean_bytes;

  // The paper's ordering: ICI < RapidChain < full replication.
  EXPECT_LT(ic, rc);
  EXPECT_LT(rc, fr);
  // Full replication stores the whole ledger.
  EXPECT_GE(fr, static_cast<double>(chain.total_bytes()));
}

TEST(Integration, HeadlineRatioMatchesTheory) {
  // Per-node bodies: ICI ≈ D·r/m (m = cluster size), RapidChain ≈ D/k.
  // With N=48, ICI k_ici=3 (m=16) vs RapidChain k_rc=4: ratio = k_rc/m = 1/4.
  const Chain chain = shared_chain(30, 10);
  constexpr std::size_t kNodes = 48;

  baseline::RapidChainConfig rc_cfg;
  rc_cfg.node_count = kNodes;
  rc_cfg.committee_count = 4;
  baseline::RapidChainNetwork rapidchain(rc_cfg);
  rapidchain.init_with_genesis(chain.at_height(0));
  rapidchain.preload_chain(chain);

  core::IciNetworkConfig ici_cfg;
  ici_cfg.node_count = kNodes;
  ici_cfg.ici.cluster_count = 3;
  core::IciNetwork ici(ici_cfg);
  ici.init_with_genesis(chain.at_height(0));
  ici.preload_chain(chain);

  // Compare body bytes only (headers are a shared constant cost).
  double rc_bodies = 0, ic_bodies = 0;
  for (const BlockStore* s : rapidchain.stores()) rc_bodies += s->body_bytes();
  rc_bodies /= static_cast<double>(rapidchain.node_count());
  for (const BlockStore* s : ici.stores()) ic_bodies += s->body_bytes();
  ic_bodies /= static_cast<double>(ici.node_count());

  EXPECT_NEAR(ic_bodies / rc_bodies, 0.25, 0.08)
      << "expected the paper's ~25% headline at m = 4k_rc";
}

TEST(Integration, DisseminationTrafficIciBelowFullrep) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 16;
  constexpr std::size_t kNodes = 32;

  // Drive both networks with identically configured (but independently
  // generated) workloads; compare bytes per disseminated block.
  ChainGenerator gen_a(ccfg), gen_b(ccfg);

  baseline::FullRepConfig fr_cfg;
  fr_cfg.node_count = kNodes;
  baseline::FullRepNetwork fullrep(fr_cfg);
  Block genesis_a = gen_a.workload().make_genesis();
  gen_a.workload().confirm(genesis_a);
  Chain chain_a(genesis_a);
  fullrep.init_with_genesis(genesis_a);

  // Cluster size 16 — the regime the paper targets (ICI's per-cluster cost
  // is ~(3.75 + r) block-equivalents regardless of m, so savings grow with
  // cluster size).
  core::IciNetworkConfig ici_cfg;
  ici_cfg.node_count = kNodes;
  ici_cfg.ici.cluster_count = 2;
  core::IciNetwork ici(ici_cfg);
  Block genesis_b = gen_b.workload().make_genesis();
  gen_b.workload().confirm(genesis_b);
  Chain chain_b(genesis_b);
  ici.init_with_genesis(genesis_b);

  std::uint64_t fr_bytes = 0, ic_bytes = 0;
  for (int i = 0; i < 3; ++i) {
    chain_a.append(gen_a.next_block(chain_a));
    fullrep.network().reset_traffic();
    EXPECT_GT(fullrep.disseminate_and_settle(chain_a.tip()), 0u);
    fr_bytes += fullrep.network().total_traffic().bytes_sent;

    chain_b.append(gen_b.next_block(chain_b));
    ici.network().reset_traffic();
    EXPECT_GT(ici.disseminate_and_settle(chain_b.tip()), 0u);
    ic_bytes += ici.network().total_traffic().bytes_sent;
  }
  EXPECT_LT(ic_bytes, fr_bytes / 2) << "ICI should at least halve dissemination traffic";
}

TEST(Integration, BootstrapOrderingIciBelowRapidchainBelowFullrep) {
  const Chain chain = shared_chain(30, 10);
  constexpr std::size_t kNodes = 32;

  baseline::FullRepConfig fr_cfg;
  fr_cfg.node_count = kNodes;
  fr_cfg.validate = false;
  baseline::FullRepNetwork fullrep(fr_cfg);
  fullrep.init_with_genesis(chain.at_height(0));
  fullrep.preload_chain(chain);
  const auto fr = fullrep.bootstrap({50, 50});
  ASSERT_TRUE(fr.complete);

  baseline::RapidChainConfig rc_cfg;
  rc_cfg.node_count = kNodes;
  rc_cfg.committee_count = 4;
  baseline::RapidChainNetwork rapidchain(rc_cfg);
  rapidchain.init_with_genesis(chain.at_height(0));
  rapidchain.preload_chain(chain);
  const auto rc = rapidchain.bootstrap({50, 50});
  ASSERT_TRUE(rc.complete);

  core::IciNetworkConfig ici_cfg;
  ici_cfg.node_count = kNodes;
  ici_cfg.ici.cluster_count = 2;  // cluster size 16 = 4 × k_rc
  core::IciNetwork ici(ici_cfg);
  ici.init_with_genesis(chain.at_height(0));
  ici.preload_chain(chain);
  const auto ic = core::Bootstrapper::join(ici, {50, 50});
  ASSERT_TRUE(ic.complete);

  EXPECT_LT(ic.bytes_downloaded, rc.bytes_downloaded);
  EXPECT_LT(rc.bytes_downloaded, fr.bytes_downloaded);
}

TEST(Integration, IntraClusterIntegrityInvariant) {
  // The defining invariant: every cluster holds the complete ledger.
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 8;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig cfg;
  cfg.node_count = 30;
  cfg.ici.cluster_count = 3;
  cfg.ici.replication = 1;
  core::IciNetwork net(cfg);
  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);

  for (int i = 0; i < 8; ++i) {
    chain.append(gen.next_block(chain));
    ASSERT_GT(net.disseminate_and_settle(chain.tip()), 0u);
  }

  auto& dir = net.directory();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    for (std::uint64_t h = 0; h <= chain.height(); ++h) {
      bool cluster_has = false;
      for (auto id : dir.members(c)) {
        if (net.node(id).store().has_block(chain.at_height(h).hash())) {
          cluster_has = true;
          break;
        }
      }
      EXPECT_TRUE(cluster_has) << "cluster " << c << " missing height " << h;
    }
  }
}

}  // namespace
}  // namespace ici
