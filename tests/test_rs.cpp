#include "erasure/rs.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ici::erasure {
namespace {

Bytes random_payload(std::size_t n, std::uint64_t seed) { return Rng(seed).bytes(n); }

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(1, 0));
  EXPECT_NO_THROW(ReedSolomon(253, 2));
}

TEST(ReedSolomon, SystematicShardsCarryPayload) {
  ReedSolomon rs(4, 2);
  const Bytes payload = random_payload(100, 1);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  ASSERT_EQ(shards.size(), 6u);
  // Reassembling just the data shards (indices 0..3) yields the framed
  // payload: length prefix then the bytes.
  Bytes framed;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(shards[i].index, i);
    framed.insert(framed.end(), shards[i].bytes.begin(), shards[i].bytes.end());
  }
  EXPECT_EQ(framed[0], 100);  // little-endian length
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), framed.begin() + 4));
}

TEST(ReedSolomon, RoundTripAllShards) {
  ReedSolomon rs(5, 3);
  const Bytes payload = random_payload(333, 2);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  const auto back = rs.reconstruct(shards);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

class RsErasurePatterns : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsErasurePatterns, AnyDataSubsetReconstructs) {
  const auto [d, p] = GetParam();
  ReedSolomon rs(static_cast<std::size_t>(d), static_cast<std::size_t>(p));
  const Bytes payload = random_payload(257, 3);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  const std::size_t total = shards.size();

  // Every subset of exactly d shards must reconstruct (MDS property).
  // Enumerate via bitmask for small totals.
  for (std::uint32_t mask = 0; mask < (1u << total); ++mask) {
    if (static_cast<int>(__builtin_popcount(mask)) != d) continue;
    std::vector<Shard> subset;
    for (std::size_t i = 0; i < total; ++i) {
      if (mask & (1u << i)) subset.push_back(shards[i]);
    }
    const auto back = rs.reconstruct(subset);
    ASSERT_TRUE(back.has_value()) << "mask " << mask;
    EXPECT_EQ(*back, payload) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallCodes, RsErasurePatterns,
                         ::testing::Values(std::make_pair(2, 1), std::make_pair(2, 2),
                                           std::make_pair(3, 2), std::make_pair(4, 2),
                                           std::make_pair(4, 4), std::make_pair(5, 3)));

TEST(ReedSolomon, TooFewShardsFails) {
  ReedSolomon rs(4, 2);
  const Bytes payload = random_payload(64, 4);
  auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  shards.resize(3);
  EXPECT_FALSE(rs.reconstruct(shards).has_value());
}

TEST(ReedSolomon, DuplicateShardsDoNotCount) {
  ReedSolomon rs(3, 2);
  const Bytes payload = random_payload(64, 5);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  const std::vector<Shard> dupes = {shards[0], shards[0], shards[0], shards[1]};
  EXPECT_FALSE(rs.reconstruct(dupes).has_value());
}

TEST(ReedSolomon, OutOfRangeIndicesIgnored) {
  ReedSolomon rs(2, 1);
  const Bytes payload = random_payload(10, 6);
  auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  Shard bogus;
  bogus.index = 99;
  bogus.bytes = shards[0].bytes;
  const std::vector<Shard> mixed = {bogus, shards[1], shards[2]};
  const auto back = rs.reconstruct(mixed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(ReedSolomon, EmptyPayloadRoundTrips) {
  ReedSolomon rs(3, 2);
  const auto shards = rs.encode({});
  const auto back = rs.reconstruct({shards[1], shards[3], shards[4]});
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(ReedSolomon, PayloadSizesAroundShardBoundaries) {
  ReedSolomon rs(4, 2);
  for (std::size_t n : {1u, 3u, 4u, 5u, 15u, 16u, 17u, 1000u}) {
    const Bytes payload = random_payload(n, 100 + n);
    auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
    // Drop two random-ish shards.
    shards.erase(shards.begin() + 1);
    shards.erase(shards.begin() + 3);
    const auto back = rs.reconstruct(shards);
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, payload) << n;
  }
}

TEST(ReedSolomon, ShardSizeFormula) {
  ReedSolomon rs(4, 2);
  // framed = payload + 4, rounded up to /4.
  EXPECT_EQ(rs.shard_size(0), 1u);
  EXPECT_EQ(rs.shard_size(4), 2u);
  EXPECT_EQ(rs.shard_size(100), 26u);
  const Bytes payload = random_payload(100, 9);
  EXPECT_EQ(rs.encode(ByteSpan(payload.data(), payload.size()))[0].bytes.size(), 26u);
}

TEST(ReedSolomon, StorageOverheadIsParityFraction) {
  ReedSolomon rs(8, 2);
  const Bytes payload = random_payload(8000, 10);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  std::size_t total = 0;
  for (const auto& s : shards) total += s.bytes.size();
  // (d+p)/d = 1.25× plus framing rounding.
  EXPECT_NEAR(static_cast<double>(total) / static_cast<double>(payload.size()), 1.25, 0.01);
}

TEST(ReedSolomon, ParityZeroDegeneratesToSplitting) {
  ReedSolomon rs(4, 0);
  const Bytes payload = random_payload(40, 11);
  const auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  EXPECT_EQ(shards.size(), 4u);
  const auto back = rs.reconstruct(shards);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

}  // namespace
}  // namespace ici::erasure
