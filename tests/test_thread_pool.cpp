// Contract tests for the worker pool behind the parallel hot paths
// (docs/THREADING.md): chunk tiling is a pure function of (range, grain),
// results and errors are deterministic for any lane count, and nested
// parallel_for degrades to inline execution instead of deadlocking.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace ici {
namespace {

using ChunkList = std::vector<std::pair<std::size_t, std::size_t>>;

/// Runs one parallel_for and returns every chunk the pool produced, sorted
/// by begin (claims race across lanes, so arrival order is meaningless).
ChunkList tile(ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain) {
  std::mutex mu;
  ChunkList chunks;
  pool.parallel_for(begin, end, grain, [&](std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPool, ZeroLengthRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, 8, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 8, [&](std::size_t, std::size_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainZeroBehavesAsGrainOne) {
  ThreadPool pool(3);
  EXPECT_EQ(tile(pool, 0, 5, 0), tile(pool, 0, 5, 1));
  const ChunkList expected = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  EXPECT_EQ(tile(pool, 0, 5, 0), expected);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  const ChunkList expected = {{2, 9}};
  EXPECT_EQ(tile(pool, 2, 9, 100), expected);
}

TEST(ThreadPool, ChunksTileTheRangeExactly) {
  ThreadPool pool(4);
  const ChunkList chunks = tile(pool, 3, 103, 7);
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 3u);
  EXPECT_EQ(chunks.back().second, 103u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].second, chunks[i + 1].first) << "gap/overlap at chunk " << i;
    EXPECT_EQ(chunks[i].second - chunks[i].first, 7u);
  }
}

TEST(ThreadPool, TilingIsIndependentOfLaneCount) {
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  struct Case {
    std::size_t begin, end, grain;
  };
  constexpr Case kCases[] = {{0, 1000, 13}, {5, 6, 1}, {0, 64, 64}, {10, 1010, 1}};
  for (const auto& c : kCases) {
    const ChunkList ref = tile(one, c.begin, c.end, c.grain);
    EXPECT_EQ(tile(two, c.begin, c.end, c.grain), ref);
    EXPECT_EQ(tile(eight, c.begin, c.end, c.grain), ref);
  }
}

TEST(ThreadPool, ResultsIdenticalAcrossLaneCounts) {
  auto run = [](ThreadPool& pool) {
    std::vector<std::uint64_t> out(4096);
    pool.parallel_for(0, out.size(), 32, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[i] = i * 2654435761u;
    });
    return out;
  };
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const auto ref = run(one);
  EXPECT_EQ(run(two), ref);
  EXPECT_EQ(run(eight), ref);
}

TEST(ThreadPool, LowestChunkExceptionWinsAndPoolSurvives) {
  ThreadPool pool(4);
  // Every chunk throws its own begin index; the deterministic contract says
  // the caller sees the lowest-index failure regardless of claim order.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.parallel_for(0, 64, 4, [&](std::size_t b, std::size_t) {
        throw std::runtime_error("chunk " + std::to_string(b));
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0");
    }
  }
  // The failed job must not wedge the pool.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, 10, [&](std::size_t b, std::size_t e) {
    std::size_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> out(256, 0);
  pool.parallel_for(0, 4, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t outer = b; outer < e; ++outer) {
      // From a worker (or while the pool is busy) this must degrade to an
      // inline serial loop rather than waiting on the occupied pool.
      pool.parallel_for(outer * 64, (outer + 1) * 64, 8,
                        [&](std::size_t ib, std::size_t ie) {
                          for (std::size_t i = ib; i < ie; ++i) out[i] = i + 1;
                        });
    }
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPool, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::size_t calls = 0;  // unsynchronized on purpose: everything is inline
  pool.parallel_for(0, 10, 3, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 4u);
}

TEST(ThreadPool, GlobalPoolResizes) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
  // 0 = hardware concurrency, always at least one lane.
  ThreadPool::set_global_threads(0);
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace ici
