#include "chain/block.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

std::vector<Transaction> sample_txs(std::size_t n) {
  std::vector<Transaction> txs;
  txs.push_back(Transaction::coinbase(KeyPair::from_seed(0).pub, 100, 1));
  for (std::size_t i = 1; i < n; ++i) {
    const KeyPair owner = KeyPair::from_seed(i);
    Transaction tx({TxInput{OutPoint{Hash256::of({}), static_cast<std::uint32_t>(i)}, {}, {}}},
                   {TxOutput{10, owner.pub}}, i);
    tx.sign_all_inputs(owner);
    txs.push_back(std::move(tx));
  }
  return txs;
}

TEST(BlockHeader, SerializeRoundTrip) {
  BlockHeader h;
  h.version = 3;
  h.parent = Hash256::of({});
  h.merkle_root = Hash256::tagged("x", {});
  h.height = 42;
  h.timestamp_us = 123456789;
  h.nonce = 7;
  const Bytes enc = h.serialize();
  EXPECT_EQ(enc.size(), BlockHeader::kWireSize);
  const BlockHeader back = BlockHeader::deserialize(ByteSpan(enc.data(), enc.size()));
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.parent, h.parent);
  EXPECT_EQ(back.merkle_root, h.merkle_root);
  EXPECT_EQ(back.height, 42u);
  EXPECT_EQ(back.timestamp_us, 123456789u);
  EXPECT_EQ(back.nonce, 7u);
  EXPECT_EQ(back.hash(), h.hash());
}

TEST(Block, AssembleComputesMerkleRoot) {
  const Block b = Block::assemble(Hash256::of({}), 1, 1000, sample_txs(5));
  EXPECT_TRUE(b.merkle_ok());
  EXPECT_EQ(b.header().height, 1u);
  EXPECT_EQ(b.txs().size(), 5u);
}

TEST(Block, EmptyBlockHasZeroMerkleRoot) {
  const Block b = Block::assemble(Hash256{}, 0, 0, {});
  EXPECT_TRUE(b.header().merkle_root.is_zero());
  EXPECT_TRUE(b.merkle_ok());
}

TEST(Block, MerkleDetectsTamperedBody) {
  Block b = Block::assemble(Hash256::of({}), 1, 0, sample_txs(4));
  // Rebuild with a different body under the same header.
  Block tampered(b.header(), sample_txs(3));
  EXPECT_FALSE(tampered.merkle_ok());
}

TEST(Block, SerializeRoundTrip) {
  const Block b = Block::assemble(Hash256::of({}), 2, 99, sample_txs(7));
  const Bytes enc = b.serialize();
  const Block back = Block::deserialize(ByteSpan(enc.data(), enc.size()));
  EXPECT_EQ(back.hash(), b.hash());
  EXPECT_EQ(back.txs().size(), 7u);
  EXPECT_TRUE(back.merkle_ok());
}

TEST(Block, SerializedSizeMatchesEncoding) {
  for (std::size_t n : {1u, 2u, 10u}) {
    const Block b = Block::assemble(Hash256::of({}), 1, 0, sample_txs(n));
    EXPECT_EQ(b.serialized_size(), b.serialize().size()) << n;
  }
}

TEST(Block, DeserializeRejectsTrailingBytes) {
  Bytes enc = Block::assemble(Hash256::of({}), 1, 0, sample_txs(2)).serialize();
  enc.push_back(1);
  EXPECT_THROW(Block::deserialize(ByteSpan(enc.data(), enc.size())), DecodeError);
}

TEST(Block, TxidsInBlockOrder) {
  const Block b = Block::assemble(Hash256::of({}), 1, 0, sample_txs(4));
  const auto ids = b.txids();
  ASSERT_EQ(ids.size(), 4u);
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], b.txs()[i].txid());
}

TEST(Block, HashDependsOnParent) {
  const auto txs = sample_txs(2);
  const Block a = Block::assemble(Hash256::of({}), 1, 0, txs);
  const Bytes other = {1};
  const Block b = Block::assemble(Hash256::of(ByteSpan(other.data(), other.size())), 1, 0, txs);
  EXPECT_NE(a.hash(), b.hash());
}

}  // namespace
}  // namespace ici
