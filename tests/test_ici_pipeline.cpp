// Pipelined dissemination: multiple blocks in flight at once. The workload
// maturity window guarantees block h+1 only spends outputs at least two
// blocks old, so slice verification of in-flight blocks never races the
// commits that create their inputs.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct PipelineRig {
  explicit PipelineRig(std::size_t maturity = 2) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 10;
    ccfg.workload.maturity = maturity;
    ccfg.workload.genesis_outputs_per_wallet = 16;  // enough mature outputs
    gen = std::make_unique<ChainGenerator>(ccfg);

    IciNetworkConfig ncfg;
    ncfg.node_count = 24;
    ncfg.ici.cluster_count = 2;
    net = std::make_unique<IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(Pipeline, ConcurrentBlocksAllCommit) {
  // Maturity >= depth: nothing in flight depends on an uncommitted block.
  constexpr int kDepth = 4;
  PipelineRig rig(kDepth);
  std::vector<Hash256> hashes;
  for (int i = 0; i < kDepth; ++i) {
    rig.chain->append(rig.gen->next_block(*rig.chain));
    hashes.push_back(rig.chain->tip().hash());
    rig.net->disseminate(rig.chain->tip());  // no settle between blocks
  }
  rig.net->settle();

  for (const Hash256& h : hashes) {
    EXPECT_GT(rig.net->full_commit_time(h), 0u) << h.short_hex();
  }
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"),
            static_cast<std::uint64_t>(kDepth) * 2);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.slice_rejected"), 0u);
}

TEST(Pipeline, UtxoShardsConsistentAfterPipelinedRun) {
  PipelineRig rig(/*maturity=*/3);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 3; ++i) {
      rig.chain->append(rig.gen->next_block(*rig.chain));
      rig.net->disseminate(rig.chain->tip());
    }
    rig.net->settle();
  }

  UtxoSet expected;
  for (const Block& b : rig.chain->blocks()) {
    for (const Transaction& tx : b.txs()) expected.apply_tx(tx, b.header().height);
  }
  auto& dir = rig.net->directory();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    std::size_t combined = 0;
    for (auto id : dir.members(c)) combined += rig.net->node(id).utxo_shard().size();
    EXPECT_EQ(combined, expected.size()) << "cluster " << c;
  }
}

TEST(Pipeline, ThroughputBeatsSequential) {
  // Same workload shape, sequential vs depth-4 pipelining: overlapping the
  // verification rounds must improve wall-clock throughput.
  constexpr int kBlocks = 8;

  // Sequential cost = the sum of each block's commit latency (settle()
  // also drains harmless timeout events, so wall-clock between settles
  // would overstate it).
  PipelineRig sequential(kBlocks);
  sim::SimTime seq_elapsed = 0;
  for (int i = 0; i < kBlocks; ++i) {
    sequential.chain->append(sequential.gen->next_block(*sequential.chain));
    const sim::SimTime latency =
        sequential.net->disseminate_and_settle(sequential.chain->tip());
    ASSERT_GT(latency, 0u);
    seq_elapsed += latency;
  }

  PipelineRig pipelined(kBlocks);
  sim::SimTime pipe_elapsed = 0;
  {
    const sim::SimTime start = pipelined.net->simulator().now();
    std::vector<Hash256> hashes;
    for (int i = 0; i < kBlocks; ++i) {
      pipelined.chain->append(pipelined.gen->next_block(*pipelined.chain));
      hashes.push_back(pipelined.chain->tip().hash());
      pipelined.net->disseminate(pipelined.chain->tip());
    }
    pipelined.net->settle();
    sim::SimTime last = 0;
    for (const Hash256& h : hashes) {
      const sim::SimTime t = pipelined.net->full_commit_time(h);
      ASSERT_GT(t, 0u);
      last = std::max(last, t);
    }
    pipe_elapsed = last - start;
  }

  // Sequential pays per-block timeout drains between blocks; compare the
  // sum of its commit latencies instead for fairness. Either way, pipelined
  // wall-clock must be clearly below kBlocks × one commit latency.
  EXPECT_LT(pipe_elapsed, seq_elapsed) << "pipelining should overlap rounds";
}

}  // namespace
}  // namespace ici::core
