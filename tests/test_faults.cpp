// Fault injection (sim/faults.h): plan-spec parsing, bit-identical replay
// from a seed, crash-window reconstruction invariants, and retrieval
// retry-with-backoff under a lossy network. docs/FAULTS.md documents the
// fault model these tests pin down.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "chain/workload.h"
#include "ici/network.h"
#include "ici/retrieval.h"
#include "sim/faults.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(std::size_t replication = 2, std::size_t data = 0, std::size_t parity = 0,
               std::size_t retry_rounds = 0, int blocks = 3) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);
    IciNetworkConfig ncfg;
    ncfg.node_count = 24;
    ncfg.ici.cluster_count = 3;
    ncfg.ici.replication = replication;
    ncfg.ici.erasure_data = data;
    ncfg.ici.erasure_parity = parity;
    ncfg.ici.fetch_retry_rounds = retry_rounds;
    net = std::make_unique<IciNetwork>(ncfg);
    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
    for (int i = 0; i < blocks; ++i) {
      chain->append(gen->next_block(*chain));
      EXPECT_GT(net->disseminate_and_settle(chain->tip()), 0u);
    }
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

cluster::NodeId pick_online_non_holder(Rig& rig, const Hash256& hash, std::size_t cluster) {
  for (auto id : rig.net->directory().members(cluster)) {
    if (rig.net->directory().online(id) && !rig.net->node(id).store().has_block(hash) &&
        !rig.net->node(id).shards().has_any(hash)) {
      return id;
    }
  }
  return cluster::kNoNode;
}

/// Everything the injector and the protocol counted, as one comparable blob.
std::string fingerprint(Rig& rig) {
  std::ostringstream os;
  const sim::FaultStats& fs = rig.net->faults()->stats();
  os << fs.msgs_dropped << '/' << fs.msgs_duplicated << '/' << fs.msgs_delayed << '/'
     << fs.partition_drops << '/' << fs.crashes << '/' << fs.restarts << '\n';
  for (const auto& [name, counter] : rig.net->metrics().counters()) {
    os << name << '=' << counter.value() << '\n';
  }
  return os.str();
}

// -- plan spec ----------------------------------------------------------------

TEST(FaultPlanSpec, ParsesEveryKey) {
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=7,crash=0.3,up_s=600,down_s=60,drop=0.1,dup=0.02,delay_us=5000",
                                    &plan, &error))
      << error;
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.crash_fraction, 0.3);
  EXPECT_EQ(plan.mean_uptime_us, 600'000'000u);
  EXPECT_EQ(plan.mean_downtime_us, 60'000'000u);
  EXPECT_DOUBLE_EQ(plan.message.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.message.duplicate_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.message.extra_delay_mean_us, 5000.0);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanSpec, DescribeRoundTrips) {
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=9,crash=0.25,drop=0.05", &plan, &error));
  sim::FaultPlan again;
  ASSERT_TRUE(sim::FaultPlan::parse(plan.describe(), &again, &error)) << error;
  EXPECT_EQ(again.describe(), plan.describe());
}

TEST(FaultPlanSpec, EmptySpecIsDisabled) {
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("", &plan, &error));
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlanSpec, RejectsBadInput) {
  sim::FaultPlan plan;
  std::string error;
  EXPECT_FALSE(sim::FaultPlan::parse("bogus=1", &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(sim::FaultPlan::parse("drop=1.5", &plan, &error));
  EXPECT_FALSE(sim::FaultPlan::parse("crash", &plan, &error));
  EXPECT_FALSE(sim::FaultPlan::parse("up_s=0,crash=0.1", &plan, &error));
}

// -- determinism --------------------------------------------------------------

TEST(FaultDeterminism, SameSeedReplaysBitIdentically) {
  // Two independent deployments under the same plan must produce the same
  // crash schedule, the same drops, the same repair traffic — everything.
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=11,crash=0.5,up_s=90,down_s=45,drop=0.15,dup=0.05",
                                    &plan, &error));

  std::vector<std::string> prints;
  std::vector<double> avail;
  for (int run = 0; run < 2; ++run) {
    Rig rig;
    rig.net->start_faults(plan);
    // Recurring crash/restart sessions keep the queue alive forever, so
    // advance in bounded windows (never settle()).
    for (int minute = 0; minute < 5; ++minute) {
      rig.net->run_for(60'000'000);
      avail.push_back(rig.net->network_availability());
    }
    EXPECT_EQ(rig.net->simulator().late_events(), 0u);
    prints.push_back(fingerprint(rig));
  }
  EXPECT_EQ(prints[0], prints[1]);
  ASSERT_EQ(avail.size(), 10u);
  for (int minute = 0; minute < 5; ++minute) {
    EXPECT_EQ(avail[static_cast<std::size_t>(minute)],
              avail[static_cast<std::size_t>(minute + 5)])
        << "availability trajectory diverged at minute " << minute;
  }
}

// -- crash windows ------------------------------------------------------------

TEST(FaultCrash, AllReplicationHoldersDownBlockStillServable) {
  // Scripted windows take every own-cluster holder of one block down at the
  // same instant; repair plus cross-cluster fallback must keep the block
  // fetchable (the paper's reconstruction invariant, read-path form).
  Rig rig(/*replication=*/2);
  const Hash256 hash = rig.chain->at_height(2).hash();
  const auto holders = rig.net->storers_of(hash, 2, 0, false);
  ASSERT_FALSE(holders.empty());

  sim::FaultPlan plan;
  const sim::SimTime t0 = rig.net->simulator().now() + 1'000'000;
  for (auto id : holders) plan.crashes.push_back({id, t0, /*restart_at_us=*/0});
  rig.net->start_faults(plan);
  rig.net->run_for(2'000'000);
  EXPECT_EQ(rig.net->faults()->stats().crashes, holders.size());
  for (auto id : holders) EXPECT_FALSE(rig.net->network().online(id));

  const auto requester = pick_online_non_holder(rig, hash, 0);
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  rig.net->node(requester).fetch_block(hash, 2, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash;
  });
  // Scripted windows with no restart schedule nothing further, so the queue
  // drains and settle() is safe here.
  rig.net->settle();
  EXPECT_TRUE(got) << "every in-cluster holder is down; the network still owns copies";
}

TEST(FaultCrash, CodedParityHoldersDownBlockReconstructs) {
  // RS(4,2): two crashed shard holders are exactly the parity budget; the
  // fetch must reconstruct from the surviving 4 shards. kmeans clusters are
  // not balanced, so pick a cluster big enough to hold one shard per node
  // (smaller clusters double up shards and a 2-node crash could cost 3).
  Rig rig(/*replication=*/1, /*data=*/4, /*parity=*/2);
  const Hash256 hash = rig.chain->at_height(1).hash();
  std::size_t cluster = rig.net->config().cluster_count;
  std::vector<cluster::NodeId> holders;
  for (std::size_t c = 0; c < rig.net->config().cluster_count; ++c) {
    holders = rig.net->shard_holders(hash, 1, c);
    if (holders.size() >= 6) {
      cluster = c;
      break;
    }
  }
  ASSERT_LT(cluster, rig.net->config().cluster_count)
      << "no cluster has one holder per RS(4,2) shard";

  sim::FaultPlan plan;
  const sim::SimTime t0 = rig.net->simulator().now() + 1'000'000;
  plan.crashes.push_back({holders[0], t0, 0});
  plan.crashes.push_back({holders[1], t0, 0});
  rig.net->start_faults(plan);
  rig.net->run_for(2'000'000);

  // Any surviving member works as the requester: a shard holder still needs
  // d-1 remote shards, a non-holder needs d — either way reconstruction
  // must succeed within the parity budget.
  cluster::NodeId requester = cluster::kNoNode;
  for (auto id : rig.net->directory().members(cluster)) {
    if (rig.net->directory().online(id)) {
      requester = id;
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  rig.net->node(requester).fetch_block(hash, 1, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash && r.block->merkle_ok();
  });
  rig.net->settle();
  EXPECT_TRUE(got) << "d shards survive, so the block must reconstruct";
}

TEST(FaultCrash, RestartWindowBringsNodeBack) {
  Rig rig;
  const auto victim = static_cast<cluster::NodeId>(3);
  sim::FaultPlan plan;
  const sim::SimTime t0 = rig.net->simulator().now() + 1'000'000;
  plan.crashes.push_back({victim, t0, t0 + 3'000'000});
  rig.net->start_faults(plan);

  rig.net->run_for(2'000'000);
  EXPECT_FALSE(rig.net->network().online(victim));
  rig.net->run_for(3'000'000);
  EXPECT_TRUE(rig.net->network().online(victim));
  EXPECT_EQ(rig.net->faults()->stats().crashes, 1u);
  EXPECT_EQ(rig.net->faults()->stats().restarts, 1u);
}

// -- message drops + retry ----------------------------------------------------

TEST(FaultDrop, RetrievalRetriesThroughHeavyDrop) {
  // Nearly half of all messages vanish (each fetch attempt needs both the
  // request and the response to survive, so ~30% of attempts land). With
  // two retry rounds the driver should still win most fetches, and the
  // retry/timeout machinery must be visibly exercised.
  Rig rig(/*replication=*/2, 0, 0, /*retry_rounds=*/2);
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=5,drop=0.45", &plan, &error));
  rig.net->start_faults(plan);

  // Message faults schedule no recurring events, so settle-mode retrieval
  // (each fetch drains timeout timers) is safe.
  const RetrievalStats stats = RetrievalDriver::run(*rig.net, 25, /*seed=*/123);
  EXPECT_GT(stats.local_hits + stats.remote_hits, stats.misses())
      << "most fetches must survive the drop rate";
  EXPECT_GT(stats.attempt_timeouts, 0u) << "dropped attempts must be counted";
  EXPECT_GT(stats.retry_rounds, 0u) << "retry-with-backoff must have kicked in";
  EXPECT_GT(rig.net->faults()->stats().msgs_dropped, 0u);
}

TEST(FaultDrop, MissSplitsIntoTimeoutsVsNotFound) {
  // A fetch for a hash nobody has, under drops, must classify as not_found
  // only when every candidate definitively answered; unanswered attempts
  // make it a timeout. Either way it lands in exactly one bucket.
  Rig rig(/*replication=*/2, 0, 0, /*retry_rounds=*/1);
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=6,drop=0.4", &plan, &error));
  rig.net->start_faults(plan);

  bool called = false;
  rig.net->node(0).fetch_block(Hash256::tagged("missing", {}), 99,
                               [&](const FetchResult& r) {
                                 called = true;
                                 EXPECT_EQ(r.block, nullptr);
                                 EXPECT_TRUE(r.outcome == FetchOutcome::kTimeout ||
                                             r.outcome == FetchOutcome::kNotFound);
                               });
  rig.net->settle();
  EXPECT_TRUE(called);
  const auto timeouts = rig.net->metrics().counter_value("retrieval.timeouts");
  const auto not_found = rig.net->metrics().counter_value("retrieval.not_found");
  EXPECT_EQ(timeouts + not_found, rig.net->metrics().counter_value("retrieval.misses"));
}

// -- background repair --------------------------------------------------------

TEST(FaultRepair, DaemonRestoresReplicasUnderChurn) {
  // Long-downtime churn with the repair daemon on: lost replicas must be
  // re-replicated (copies counted) and network-wide serveability must hold
  // at the end of the window.
  Rig rig(/*replication=*/2);
  sim::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(sim::FaultPlan::parse("seed=13,crash=0.4,up_s=60,down_s=600", &plan, &error));
  constexpr sim::SimTime kWindow = 5 * 60'000'000;
  rig.net->start_faults(plan);
  rig.net->start_repair_daemon(30'000'000, rig.net->simulator().now() + kWindow);
  rig.net->run_for(kWindow);

  EXPECT_GT(rig.net->metrics().counter_value("repair.copies_started"), 0u);
  EXPECT_GT(rig.net->network_availability(), 0.99)
      << "repair must keep committed blocks servable somewhere";
}

}  // namespace
}  // namespace ici::core
