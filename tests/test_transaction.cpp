#include "chain/transaction.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

Transaction sample_tx(const KeyPair& owner, std::uint64_t nonce = 1) {
  const Hash256 prev = Hash256::of({});
  Transaction tx({TxInput{OutPoint{prev, 0}, {}, {}}},
                 {TxOutput{100, KeyPair::from_seed(99).pub}, TxOutput{50, owner.pub}}, nonce);
  tx.sign_all_inputs(owner);
  return tx;
}

TEST(Transaction, CoinbaseHasNoInputs) {
  const auto cb = Transaction::coinbase(KeyPair::from_seed(1).pub, 500, 7);
  EXPECT_TRUE(cb.is_coinbase());
  EXPECT_EQ(cb.outputs().size(), 1u);
  EXPECT_EQ(cb.outputs()[0].value, 500u);
  EXPECT_EQ(cb.nonce(), 7u);
}

TEST(Transaction, CoinbasesAtDifferentHeightsHaveDistinctTxids) {
  const PublicKey pub = KeyPair::from_seed(1).pub;
  EXPECT_NE(Transaction::coinbase(pub, 500, 1).txid(), Transaction::coinbase(pub, 500, 2).txid());
}

TEST(Transaction, SerializeRoundTrip) {
  const KeyPair owner = KeyPair::from_seed(5);
  const Transaction tx = sample_tx(owner);
  const Bytes enc = tx.serialize();
  const Transaction back = Transaction::deserialize(ByteSpan(enc.data(), enc.size()));
  EXPECT_EQ(back.txid(), tx.txid());
  EXPECT_EQ(back.inputs().size(), tx.inputs().size());
  EXPECT_EQ(back.outputs().size(), tx.outputs().size());
  EXPECT_EQ(back.outputs()[0].value, 100u);
  EXPECT_EQ(back.nonce(), tx.nonce());
  EXPECT_EQ(back.inputs()[0].sig, tx.inputs()[0].sig);
}

TEST(Transaction, DeserializeRejectsTrailingBytes) {
  const KeyPair owner = KeyPair::from_seed(5);
  Bytes enc = sample_tx(owner).serialize();
  enc.push_back(0);
  EXPECT_THROW(Transaction::deserialize(ByteSpan(enc.data(), enc.size())), DecodeError);
}

TEST(Transaction, DeserializeRejectsTruncation) {
  const KeyPair owner = KeyPair::from_seed(5);
  const Bytes enc = sample_tx(owner).serialize();
  EXPECT_THROW(Transaction::deserialize(ByteSpan(enc.data(), enc.size() - 1)), DecodeError);
}

TEST(Transaction, SerializedSizeMatchesEncoding) {
  const KeyPair owner = KeyPair::from_seed(6);
  const Transaction tx = sample_tx(owner);
  EXPECT_EQ(tx.serialized_size(), tx.serialize().size());
  const auto cb = Transaction::coinbase(owner.pub, 1, 0);
  EXPECT_EQ(cb.serialized_size(), cb.serialize().size());
}

TEST(Transaction, TxidChangesWithContent) {
  const KeyPair owner = KeyPair::from_seed(7);
  EXPECT_NE(sample_tx(owner, 1).txid(), sample_tx(owner, 2).txid());
}

TEST(Transaction, TxidCoversSignatures) {
  // Two txs identical except for the signer have different txids (the
  // signature and pubkey are part of the canonical encoding).
  const Hash256 prev = Hash256::of({});
  Transaction a({TxInput{OutPoint{prev, 0}, {}, {}}}, {TxOutput{10, KeyPair::from_seed(9).pub}});
  Transaction b = a;
  a.sign_all_inputs(KeyPair::from_seed(1));
  b.sign_all_inputs(KeyPair::from_seed(2));
  EXPECT_NE(a.txid(), b.txid());
}

TEST(Transaction, SigningPayloadExcludesSignatures) {
  const Hash256 prev = Hash256::of({});
  Transaction tx({TxInput{OutPoint{prev, 0}, {}, {}}}, {TxOutput{10, KeyPair::from_seed(9).pub}});
  const Bytes before = tx.signing_payload();
  tx.sign_all_inputs(KeyPair::from_seed(1));
  // The payload still excludes the (now-set) signature but includes the pub.
  Transaction resigned = tx;
  resigned.sign_all_inputs(KeyPair::from_seed(1));
  EXPECT_EQ(resigned.signing_payload(), tx.signing_payload());
  EXPECT_NE(before.size(), 0u);
}

TEST(Transaction, SignedInputsVerify) {
  const KeyPair owner = KeyPair::from_seed(11);
  const Transaction tx = sample_tx(owner);
  const Bytes payload = tx.signing_payload();
  for (const TxInput& in : tx.inputs()) {
    EXPECT_TRUE(verify(in.pub, ByteSpan(payload.data(), payload.size()), in.sig));
    EXPECT_EQ(in.pub, owner.pub);
  }
}

TEST(Transaction, TotalOutputSums) {
  const KeyPair owner = KeyPair::from_seed(12);
  EXPECT_EQ(sample_tx(owner).total_output(), 150u);
}

TEST(OutPoint, HasherAndEquality) {
  const Hash256 h = Hash256::of({});
  OutPoint a{h, 0}, b{h, 0}, c{h, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  OutPointHasher hasher;
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));
}

}  // namespace
}  // namespace ici
