// Wire-codec tests: every protocol message round-trips, and its encoding is
// exactly wire_size() + 1 bytes — the invariant tying the simulator's
// byte-accurate traffic accounting to a real serialization.
#include "ici/codec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "chain/workload.h"
#include "common/rng.h"

namespace ici::core {
namespace {

std::shared_ptr<const Block> sample_block() {
  ChainGenConfig cfg;
  cfg.blocks = 1;
  cfg.txs_per_block = 5;
  static const Chain chain = ChainGenerator(cfg).generate();
  return std::make_shared<const Block>(chain.at_height(1));
}

/// Round-trips `msg` and returns the decoded message after checking the
/// size invariant.
template <typename T>
std::shared_ptr<T> roundtrip(const T& msg) {
  const Bytes wire = encode_message(msg);
  EXPECT_EQ(wire.size(), msg.wire_size() + 1)
      << msg.type_name() << ": encoding does not match the charged wire size";
  auto decoded = decode_message(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(decoded->kind(), msg.kind());
  auto typed = std::dynamic_pointer_cast<T>(decoded);
  EXPECT_NE(typed, nullptr);
  return typed;
}

TEST(Codec, FullBlock) {
  FullBlockMsg msg(sample_block(), true);
  auto back = roundtrip(msg);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->for_verification);
  EXPECT_EQ(back->block->hash(), msg.block->hash());
  EXPECT_EQ(back->block->txs().size(), msg.block->txs().size());
}

TEST(Codec, Slice) {
  auto block = sample_block();
  SliceMsg msg;
  msg.header = block->header();
  msg.block_hash = block->hash();
  msg.first_index = 2;
  msg.total_txs = 6;
  msg.txs = {block->txs()[1], block->txs()[2]};
  auto back = roundtrip(msg);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->header.hash(), msg.header.hash());
  EXPECT_EQ(back->first_index, 2u);
  EXPECT_EQ(back->total_txs, 6u);
  ASSERT_EQ(back->txs.size(), 2u);
  EXPECT_EQ(back->txs[0].txid(), msg.txs[0].txid());
}

TEST(Codec, SliceEmpty) {
  auto block = sample_block();
  SliceMsg msg;
  msg.header = block->header();
  msg.block_hash = block->hash();
  auto back = roundtrip(msg);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->txs.empty());
}

TEST(Codec, UtxoLookupAndResponse) {
  UtxoLookupMsg lookup;
  lookup.block_hash = Hash256::of({});
  lookup.outpoints = {{Hash256::tagged("a", {}), 0}, {Hash256::tagged("b", {}), 7}};
  auto lb = roundtrip(lookup);
  ASSERT_NE(lb, nullptr);
  ASSERT_EQ(lb->outpoints.size(), 2u);
  EXPECT_EQ(lb->outpoints[1].index, 7u);

  UtxoResponseMsg resp;
  resp.block_hash = lookup.block_hash;
  resp.entries = {{lookup.outpoints[0], true, TxOutput{42, KeyPair::from_seed(1).pub}},
                  {lookup.outpoints[1], false, {}}};
  auto rb = roundtrip(resp);
  ASSERT_NE(rb, nullptr);
  ASSERT_EQ(rb->entries.size(), 2u);
  EXPECT_TRUE(rb->entries[0].exists);
  EXPECT_EQ(rb->entries[0].output.value, 42u);
  EXPECT_EQ(rb->entries[0].output.recipient, KeyPair::from_seed(1).pub);
  EXPECT_FALSE(rb->entries[1].exists);
}

TEST(Codec, Vote) {
  const KeyPair key = KeyPair::from_seed(5);
  VoteMsg msg;
  msg.block_hash = Hash256::tagged("blk", {});
  msg.approve = true;
  msg.slice_digest = Hash256::tagged("digest", {});
  msg.voter = key.pub;
  msg.sig = sign(key, {});
  auto back = roundtrip(msg);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->approve);
  EXPECT_EQ(back->voter, key.pub);
  EXPECT_EQ(back->sig, msg.sig);
  EXPECT_EQ(back->slice_digest, msg.slice_digest);
}

TEST(Codec, Commit) {
  auto block = sample_block();
  CommitMsg msg;
  msg.header = block->header();
  msg.block_hash = block->hash();
  msg.spent = {{Hash256::tagged("s", {}), 3}};
  msg.created = {{{Hash256::tagged("c", {}), 1}, TxOutput{99, KeyPair::from_seed(2).pub}},
                 {{Hash256::tagged("c2", {}), 0}, TxOutput{1, KeyPair::from_seed(3).pub}}};
  auto back = roundtrip(msg);
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->spent.size(), 1u);
  ASSERT_EQ(back->created.size(), 2u);
  EXPECT_EQ(back->created[0].second.value, 99u);
  EXPECT_EQ(back->header.hash(), msg.header.hash());
}

TEST(Codec, BlockRequestResponse) {
  BlockRequestMsg req;
  req.block_hash = Hash256::of({});
  req.request_id = 77;
  auto rb = roundtrip(req);
  EXPECT_EQ(rb->request_id, 77u);

  BlockResponseMsg hit;
  hit.block_hash = req.block_hash;
  hit.request_id = 77;
  hit.block = sample_block();
  auto hb = roundtrip(hit);
  ASSERT_NE(hb->block, nullptr);
  EXPECT_EQ(hb->block->hash(), hit.block->hash());

  BlockResponseMsg miss;
  miss.block_hash = req.block_hash;
  miss.request_id = 78;
  auto mb = roundtrip(miss);
  EXPECT_EQ(mb->block, nullptr);
}

TEST(Codec, Headers) {
  HeadersRequestMsg req;
  req.from_height = 12;
  EXPECT_EQ(roundtrip(req)->from_height, 12u);

  HeadersResponseMsg resp;
  resp.headers = {sample_block()->header(), sample_block()->header()};
  auto back = roundtrip(resp);
  ASSERT_EQ(back->headers.size(), 2u);
  EXPECT_EQ(back->headers[0].hash(), resp.headers[0].hash());
}

TEST(Codec, Inventory) {
  InventoryRequestMsg req;
  req.hashes = {Hash256::tagged("1", {}), Hash256::tagged("2", {})};
  EXPECT_EQ(roundtrip(req)->hashes, req.hashes);

  InventoryResponseMsg resp;
  resp.held = {Hash256::tagged("1", {})};
  EXPECT_EQ(roundtrip(resp)->held, resp.held);
}

TEST(Codec, Shards) {
  BlockShardMsg shard;
  shard.block_hash = Hash256::of({});
  shard.height = 9;
  shard.shard = {3, Bytes{1, 2, 3, 4, 5}};
  auto sb = roundtrip(shard);
  EXPECT_EQ(sb->shard.index, 3u);
  EXPECT_EQ(sb->shard.bytes, (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(sb->height, 9u);

  ShardRequestMsg req;
  req.block_hash = shard.block_hash;
  req.request_id = 5;
  EXPECT_EQ(roundtrip(req)->request_id, 5u);

  ShardResponseMsg hit;
  hit.block_hash = shard.block_hash;
  hit.request_id = 5;
  hit.shard = shard.shard;
  auto hb = roundtrip(hit);
  ASSERT_TRUE(hb->shard.has_value());
  EXPECT_EQ(hb->shard->bytes, shard.shard.bytes);

  ShardResponseMsg miss;
  miss.block_hash = shard.block_hash;
  miss.request_id = 6;
  EXPECT_FALSE(roundtrip(miss)->shard.has_value());
}

TEST(Codec, Proofs) {
  auto block = sample_block();
  ProofRequestMsg req;
  req.txid = block->txs()[1].txid();
  req.block_hash = block->hash();
  req.request_id = 11;
  EXPECT_EQ(roundtrip(req)->request_id, 11u);

  ProofResponseMsg resp;
  resp.request_id = 11;
  resp.proof = spv::build_proof(*block, req.txid);
  ASSERT_TRUE(resp.proof.has_value());
  auto back = roundtrip(resp);
  ASSERT_TRUE(back->proof.has_value());
  EXPECT_EQ(back->proof->txid, req.txid);
  EXPECT_EQ(back->proof->path.size(), resp.proof->path.size());
  EXPECT_TRUE(spv::verify_proof(*back->proof, block->header()));

  ProofResponseMsg miss;
  miss.request_id = 12;
  EXPECT_FALSE(roundtrip(miss)->proof.has_value());
}

TEST(Codec, TxLocate) {
  TxLocateRequestMsg req;
  req.txid = Hash256::tagged("tx", {});
  req.request_id = 21;
  auto rb = roundtrip(req);
  EXPECT_EQ(rb->txid, req.txid);
  EXPECT_EQ(rb->request_id, 21u);

  TxLocateResponseMsg hit;
  hit.request_id = 21;
  hit.found = true;
  hit.block_hash = Hash256::tagged("blk", {});
  hit.height = 17;
  auto hb = roundtrip(hit);
  EXPECT_TRUE(hb->found);
  EXPECT_EQ(hb->block_hash, hit.block_hash);
  EXPECT_EQ(hb->height, 17u);

  TxLocateResponseMsg miss;
  miss.request_id = 22;
  EXPECT_FALSE(roundtrip(miss)->found);
}

TEST(Codec, RejectsGarbage) {
  EXPECT_THROW((void)decode_message({}), DecodeError);
  const Bytes unknown_kind = {0xee};
  EXPECT_THROW((void)decode_message(ByteSpan(unknown_kind.data(), unknown_kind.size())),
               DecodeError);
  // Truncated vote.
  VoteMsg vote;
  Bytes wire = encode_message(vote);
  wire.resize(wire.size() - 10);
  EXPECT_THROW((void)decode_message(ByteSpan(wire.data(), wire.size())), DecodeError);
  // Trailing garbage.
  Bytes padded = encode_message(HeadersRequestMsg{});
  padded.push_back(0);
  EXPECT_THROW((void)decode_message(ByteSpan(padded.data(), padded.size())), DecodeError);
}

TEST(Codec, FuzzTruncationsNeverCrash) {
  // Every prefix of every message either decodes or throws DecodeError —
  // no crashes, no silent garbage acceptance of short buffers.
  std::vector<Bytes> corpus;
  corpus.push_back(encode_message(FullBlockMsg(sample_block(), false)));
  {
    VoteMsg v;
    v.challenged_txid = Hash256::of({});
    corpus.push_back(encode_message(v));
  }
  {
    CommitMsg c;
    c.header = sample_block()->header();
    c.spent = {{Hash256::of({}), 1}};
    corpus.push_back(encode_message(c));
  }
  {
    HeadersResponseMsg h;
    h.headers = {sample_block()->header()};
    corpus.push_back(encode_message(h));
  }

  for (const Bytes& wire : corpus) {
    for (std::size_t len = 0; len < wire.size(); ++len) {
      try {
        (void)decode_message(ByteSpan(wire.data(), len));
      } catch (const DecodeError&) {
        // expected for malformed prefixes
      }
    }
  }
}

TEST(Codec, FuzzBitFlipsNeverCrash) {
  Rng rng(31337);
  const Bytes base = encode_message(FullBlockMsg(sample_block(), true));
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = base;
    const std::size_t flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    try {
      auto msg = decode_message(ByteSpan(mutated.data(), mutated.size()));
      // A decode that survives must at least be internally consistent
      // enough to re-encode without crashing.
      (void)encode_message(*std::static_pointer_cast<IciMessage>(msg));
    } catch (const DecodeError&) {
      // expected for most mutations
    }
  }
}

}  // namespace
}  // namespace ici::core

// -- allocation accounting ----------------------------------------------------
// encode_message pre-reserves the exact wire size and every nested
// serializer appends through serialize_into, so the only heap traffic in an
// encode is the output buffer itself. Replacing global operator new (for
// this whole binary — it just counts, then defers to malloc) lets the test
// below pin that down instead of trusting the comment.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ici::core {
namespace {

TEST(Codec, EncodeFullBlockDoesAtMostOneAllocation) {
  // A full-size block (the largest message the dissemination path ships).
  ChainGenConfig cfg;
  cfg.blocks = 1;
  cfg.txs_per_block = 256;
  const Chain chain = ChainGenerator(cfg).generate();
  const FullBlockMsg msg(std::make_shared<const Block>(chain.at_height(1)), false);

  // Warm-up: the codec/encode trace span aggregates wall samples into a
  // vector with amortized doubling; 70 encodes park its capacity at 128 so
  // the measured encode (sample 71) cannot trigger a regrowth, and the
  // span bookkeeping itself (label map node, span stack) is warm too.
  for (int i = 0; i < 70; ++i) (void)encode_message(msg);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const Bytes wire = encode_message(msg);
  const std::size_t during = g_alloc_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(wire.size(), msg.wire_size() + 1);
  EXPECT_LE(during, 1u) << "encode_message should allocate only the output buffer";
}

}  // namespace
}  // namespace ici::core
