// The determinism contract (docs/THREADING.md): the worker-pool size changes
// wall clock only. Every parallel hot path — RS encode/reconstruct, batch
// Merkle hashing, collaborative slice verification inside a full network
// run — must produce byte-identical results at 1, 2, and 8 lanes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "chain/workload.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "erasure/rs.h"
#include "ici/network.h"
#include "sim/faults.h"
#include "storage/storage_meter.h"

namespace ici {
namespace {

constexpr std::size_t kLaneCounts[] = {1, 2, 8};

class ThreadsDeterminism : public ::testing::Test {
 protected:
  // Tests mutate the process-wide pool; always hand back a 1-lane pool so
  // suites that run after this one see the serial default.
  void TearDown() override { ThreadPool::set_global_threads(1); }
};

TEST_F(ThreadsDeterminism, ReedSolomonEncodeBytes) {
  Rng rng(7);
  // Large enough that rows split into several chunks (per-shard cost well
  // above kMinRowBytesPerChunk / total_shards).
  const Bytes payload = rng.bytes(1 << 20);
  const erasure::ReedSolomon rs(8, 4);

  std::vector<std::vector<erasure::Shard>> runs;
  for (const std::size_t lanes : kLaneCounts) {
    ThreadPool::set_global_threads(lanes);
    runs.push_back(rs.encode(ByteSpan(payload.data(), payload.size())));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].size(), runs[0].size());
    for (std::size_t s = 0; s < runs[0].size(); ++s) {
      EXPECT_EQ(runs[i][s].index, runs[0][s].index);
      EXPECT_EQ(runs[i][s].bytes, runs[0][s].bytes)
          << "shard " << s << " differs at " << kLaneCounts[i] << " lanes";
    }
  }
}

TEST_F(ThreadsDeterminism, ReedSolomonReconstructBytes) {
  Rng rng(8);
  const Bytes payload = rng.bytes(1 << 20);
  const erasure::ReedSolomon rs(8, 4);
  auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  // Drop four shards (worst case for RS(8,4)): parity must carry the load.
  shards.erase(shards.begin(), shards.begin() + 3);
  shards.erase(shards.begin() + 2);

  std::vector<Bytes> runs;
  for (const std::size_t lanes : kLaneCounts) {
    ThreadPool::set_global_threads(lanes);
    const auto decoded = rs.reconstruct(shards);
    ASSERT_TRUE(decoded.has_value()) << "reconstruct failed at " << lanes << " lanes";
    runs.push_back(*decoded);
  }
  EXPECT_EQ(runs[0], payload);
  for (std::size_t i = 1; i < runs.size(); ++i) EXPECT_EQ(runs[i], runs[0]);
}

TEST_F(ThreadsDeterminism, MerkleRootAboveParallelThreshold) {
  // 4096 leaves: the first few levels exceed the 256-parent threshold and
  // fan out; deeper levels fall back to the serial loop. The root must not
  // care.
  std::vector<Hash256> leaves;
  leaves.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    ByteWriter w;
    w.u64(i);
    leaves.push_back(Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size())));
  }

  std::vector<Hash256> roots;
  for (const std::size_t lanes : kLaneCounts) {
    ThreadPool::set_global_threads(lanes);
    roots.push_back(MerkleTree::compute_root(leaves));
  }
  for (std::size_t i = 1; i < roots.size(); ++i) EXPECT_EQ(roots[i], roots[0]);
}

/// Everything observable from one full dissemination run that could drift
/// if slice verification stopped being deterministic.
struct RunFingerprint {
  std::vector<sim::SimTime> commit_latency;
  double storage_mean = 0;
  double storage_max = 0;
  std::uint64_t traffic_bytes = 0;
  std::uint64_t traffic_msgs = 0;
  std::map<std::string, std::uint64_t> counters;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_network() {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 24;
  ccfg.workload.wallet_count = 16;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig ncfg;
  ncfg.node_count = 24;
  ncfg.ici.cluster_count = 3;
  core::IciNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);

  // The contract must also hold under fault injection: the
  // test_threads_determinism_faults CTest variant sets ICI_FAULT_PLAN to a
  // message-fault plan (drop/dup/delay only — random crash schedules never
  // quiesce, so a settle-based run cannot carry them). Unset leaves the
  // legacy path with zero extra RNG draws.
  if (const char* spec = std::getenv("ICI_FAULT_PLAN");
      spec != nullptr && *spec != '\0') {
    sim::FaultPlan plan;
    std::string error;
    if (!sim::FaultPlan::parse(spec, &plan, &error)) {
      ADD_FAILURE() << "bad ICI_FAULT_PLAN: " << error;
    } else if (plan.enabled()) {
      net.start_faults(plan);
    }
  }

  RunFingerprint fp;
  for (int i = 0; i < 5; ++i) {
    chain.append(gen.next_block(chain));
    fp.commit_latency.push_back(net.disseminate_and_settle(chain.tip()));
  }
  const auto snap = net.storage_snapshot();
  fp.storage_mean = snap.mean_bytes;
  fp.storage_max = snap.max_bytes;
  const auto traffic = net.network().total_traffic();
  fp.traffic_bytes = traffic.bytes_sent;
  fp.traffic_msgs = traffic.msgs_sent;
  for (const auto& [name, counter] : net.metrics().counters()) {
    fp.counters[name] = counter.value();
  }
  return fp;
}

TEST_F(ThreadsDeterminism, FullNetworkRunIsBitIdentical) {
  std::vector<RunFingerprint> runs;
  for (const std::size_t lanes : kLaneCounts) {
    ThreadPool::set_global_threads(lanes);
    runs.push_back(run_network());
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].commit_latency, runs[0].commit_latency);
    EXPECT_EQ(runs[i].storage_mean, runs[0].storage_mean);
    EXPECT_EQ(runs[i].storage_max, runs[0].storage_max);
    EXPECT_EQ(runs[i].traffic_bytes, runs[0].traffic_bytes);
    EXPECT_EQ(runs[i].traffic_msgs, runs[0].traffic_msgs);
    EXPECT_EQ(runs[i].counters, runs[0].counters);
  }
  // Event-core hygiene on a full deterministic run: nothing schedules into
  // the past (the Simulator::at clamp never fires) and no closure outgrew
  // the inline event buffer.
  ASSERT_TRUE(runs[0].counters.count("sim.late_events"));
  EXPECT_EQ(runs[0].counters.at("sim.late_events"), 0u);
  ASSERT_TRUE(runs[0].counters.count("sim.event_heap_fallbacks"));
  EXPECT_EQ(runs[0].counters.at("sim.event_heap_fallbacks"), 0u);
}

}  // namespace
}  // namespace ici
