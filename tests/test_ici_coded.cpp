// Coded-storage mode: blocks live as Reed-Solomon shards spread over d+p
// cluster members instead of whole copies.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/bootstrap.h"
#include "ici/network.h"
#include "storage/shard_store.h"

namespace ici::core {
namespace {

struct CodedRig {
  CodedRig(std::size_t nodes = 24, std::size_t clusters = 2, std::size_t data = 4,
           std::size_t parity = 2) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 10;
    gen = std::make_unique<ChainGenerator>(ccfg);

    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    ncfg.ici.erasure_data = data;
    ncfg.ici.erasure_parity = parity;
    net = std::make_unique<IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(ShardStore, PutGetPruneAccounting) {
  ShardStore store;
  const Hash256 h = Hash256::of({});
  erasure::Shard s1{1, Bytes{1, 2, 3}};
  erasure::Shard s2{2, Bytes{4, 5}};
  store.put(h, s1);
  store.put(h, s2);
  store.put(h, s1);  // idempotent
  EXPECT_EQ(store.shard_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 5u);
  EXPECT_TRUE(store.has(h, 1));
  EXPECT_TRUE(store.has_any(h));
  EXPECT_FALSE(store.has(h, 3));
  ASSERT_NE(store.get(h, 2), nullptr);
  EXPECT_EQ(store.get(h, 2)->bytes, (Bytes{4, 5}));
  EXPECT_EQ(store.indices(h).size(), 2u);

  EXPECT_EQ(store.prune(h, 1), 3u);
  EXPECT_EQ(store.total_bytes(), 2u);
  EXPECT_EQ(store.prune(h, 1), 0u);
  EXPECT_EQ(store.prune(h, 9), 0u);
}

TEST(CodedMode, DisseminationStoresShardsNotBodies) {
  CodedRig rig;
  ASSERT_GT(rig.step(), 0u);
  const Hash256 hash = rig.chain->tip().hash();

  auto& dir = rig.net->directory();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    const auto holders = rig.net->shard_holders(hash, 1, c);
    EXPECT_EQ(holders.size(), 6u);  // d + p
    std::size_t shard_count = 0;
    for (auto id : dir.members(c)) {
      EXPECT_FALSE(rig.net->node(id).store().has_block(hash))
          << "coded mode must not store whole bodies";
      shard_count += rig.net->node(id).shards().indices(hash).size();
    }
    EXPECT_EQ(shard_count, 6u) << "cluster " << c;
    // Holder i has shard index i.
    for (std::uint32_t i = 0; i < holders.size(); ++i) {
      EXPECT_TRUE(rig.net->node(holders[i]).shards().has(hash, i));
    }
  }
}

TEST(CodedMode, FetchReconstructsBlock) {
  CodedRig rig;
  for (int i = 0; i < 3; ++i) ASSERT_GT(rig.step(), 0u);
  const Block& target = rig.chain->at_height(2);

  bool got = false;
  rig.net->node(0).fetch_block(target.hash(), 2, [&](const FetchResult& r) {
    ASSERT_NE(r.block, nullptr);
    EXPECT_EQ(r.block->hash(), target.hash());
    EXPECT_TRUE(r.block->merkle_ok());
    EXPECT_GT(r.elapsed_us, 0u);
    got = true;
  });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(CodedMode, SurvivesParityManyHoldersOffline) {
  CodedRig rig(24, 2, 4, 2);
  ASSERT_GT(rig.step(), 0u);
  const Hash256 hash = rig.chain->tip().hash();
  auto& dir = rig.net->directory();

  // Take 2 (= parity) holders of cluster 0 offline; the block must still
  // reconstruct from the remaining 4 shards.
  const auto holders = rig.net->shard_holders(hash, 1, 0);
  for (int i = 0; i < 2; ++i) {
    rig.net->network().set_online(holders[static_cast<std::size_t>(i)], false);
    dir.set_online(holders[static_cast<std::size_t>(i)], false);
  }
  EXPECT_NEAR(rig.net->availability(), 1.0, 1e-9);

  cluster::NodeId requester = cluster::kNoNode;
  for (auto id : dir.members(0)) {
    if (dir.online(id) && std::find(holders.begin(), holders.end(), id) == holders.end()) {
      requester = id;
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  rig.net->node(requester).fetch_block(
      hash, 1, [&](const FetchResult& r) { got = r.block != nullptr; });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(CodedMode, UnavailableWhenMoreThanParityOffline) {
  CodedRig rig(24, 2, 4, 2);
  ASSERT_GT(rig.step(), 0u);
  const Hash256 hash = rig.chain->tip().hash();
  auto& dir = rig.net->directory();

  const auto holders = rig.net->shard_holders(hash, 1, 0);
  for (int i = 0; i < 3; ++i) {  // parity + 1
    rig.net->network().set_online(holders[static_cast<std::size_t>(i)], false);
    dir.set_online(holders[static_cast<std::size_t>(i)], false);
  }
  EXPECT_LT(rig.net->availability(), 1.0);
}

TEST(CodedMode, RepairRestoresMissingShards) {
  CodedRig rig(24, 2, 4, 2);
  for (int i = 0; i < 3; ++i) ASSERT_GT(rig.step(), 0u);
  auto& dir = rig.net->directory();

  // Knock one member of cluster 0 offline, repair, and check the cluster is
  // back to full d+p online shards for every block.
  const cluster::NodeId victim = dir.members(0).front();
  rig.net->network().set_online(victim, false);
  dir.set_online(victim, false);
  rig.net->repair_cluster(0);
  rig.net->settle();

  for (const auto& b : rig.net->committed()) {
    std::size_t online_shards = 0;
    std::vector<bool> seen(6, false);
    for (auto id : dir.members(0)) {
      if (!dir.online(id)) continue;
      for (auto index : rig.net->node(id).shards().indices(b.hash)) {
        if (!seen[index]) {
          seen[index] = true;
          ++online_shards;
        }
      }
    }
    EXPECT_GE(online_shards, 6u) << "block " << b.height << " not fully repaired";
  }
  EXPECT_NEAR(rig.net->availability(), 1.0, 1e-9);
}

TEST(CodedMode, StorageIsFractionOfReplication) {
  // Same ledger, r=2 replication vs (4,2) coding: coding should cost
  // ~1.5/... per cluster: replication 2 whole copies vs coded 1.5x one copy.
  ChainGenConfig ccfg;
  ccfg.blocks = 10;
  ccfg.txs_per_block = 20;
  const Chain chain = ChainGenerator(ccfg).generate();

  IciNetworkConfig rep_cfg;
  rep_cfg.node_count = 24;
  rep_cfg.ici.cluster_count = 2;
  rep_cfg.ici.replication = 2;
  IciNetwork replicated(rep_cfg);
  replicated.init_with_genesis(chain.at_height(0));
  replicated.preload_chain(chain);

  IciNetworkConfig coded_cfg;
  coded_cfg.node_count = 24;
  coded_cfg.ici.cluster_count = 2;
  coded_cfg.ici.erasure_data = 4;
  coded_cfg.ici.erasure_parity = 2;
  IciNetwork coded(coded_cfg);
  coded.init_with_genesis(chain.at_height(0));
  coded.preload_chain(chain);

  const double rep_bytes = static_cast<double>(replicated.storage_snapshot().total_bytes);
  const double coded_bytes = static_cast<double>(coded.storage_snapshot().total_bytes);
  // Bodies: replication = 2.0×D per cluster; coded = 1.5×D per cluster.
  // Headers are a shared constant. Expect coded < replication.
  EXPECT_LT(coded_bytes, rep_bytes * 0.9);
  // And the coded overhead ratio on shard bytes alone is ~1.5/2.0 = 0.75.
}

TEST(CodedMode, BootstrapFetchesOnlyAssignedShards) {
  ChainGenConfig ccfg;
  ccfg.blocks = 12;
  ccfg.txs_per_block = 8;
  const Chain chain = ChainGenerator(ccfg).generate();

  IciNetworkConfig cfg;
  cfg.node_count = 24;
  cfg.ici.cluster_count = 2;
  cfg.ici.erasure_data = 4;
  cfg.ici.erasure_parity = 2;
  IciNetwork net(cfg);
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain);

  const BootstrapReport report = Bootstrapper::join(net, {50, 50});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(net.node(report.joiner).store().header_count(), chain.size());
  // The joiner holds exactly one shard per block it is assigned to.
  std::size_t held = 0;
  for (std::uint64_t h = 0; h <= chain.height(); ++h) {
    held += net.node(report.joiner).shards().indices(chain.at_height(h).hash()).size();
  }
  EXPECT_EQ(held, report.bodies_fetched);
  // Downloads stay well under the ledger size (it pulled d shards per
  // assigned block, not the whole chain).
  EXPECT_LT(report.bytes_downloaded, chain.total_bytes());
}

TEST(CodedMode, ConfigValidation) {
  IciConfig cfg;
  cfg.erasure_data = 200;
  cfg.erasure_parity = 100;
  EXPECT_FALSE(cfg.valid());
  cfg.erasure_parity = 55;
  EXPECT_TRUE(cfg.valid());
}

}  // namespace
}  // namespace ici::core
