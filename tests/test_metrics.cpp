#include "metrics/registry.h"

#include <gtest/gtest.h>

namespace ici::metrics {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(5);
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, CounterCreatedOnDemand) {
  Registry r;
  EXPECT_EQ(r.counter_value("missing"), 0u);
  r.counter("a").inc(3);
  EXPECT_EQ(r.counter_value("a"), 3u);
  r.counter("a").inc();
  EXPECT_EQ(r.counter_value("a"), 4u);
}

TEST(Registry, DistributionCreatedOnDemand) {
  Registry r;
  EXPECT_EQ(r.find_distribution("missing"), nullptr);
  r.distribution("lat").add(10);
  r.distribution("lat").add(20);
  const Distribution* d = r.find_distribution("lat");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count(), 2u);
  EXPECT_EQ(d->mean(), 15.0);
}

TEST(Registry, IterationIsSorted) {
  Registry r;
  r.counter("zebra").inc();
  r.counter("alpha").inc();
  r.counter("mid").inc();
  std::vector<std::string> names;
  for (const auto& [name, counter] : r.counters()) {
    (void)counter;
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST(DistributionSummary, EmptyDistribution) {
  Distribution d;
  const DistributionSummary s = summarize(d);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.total, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(DistributionSummary, SingleSample) {
  Distribution d;
  d.add(42.0);
  const DistributionSummary s = summarize(d);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.total, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.p99, 42.0);
}

TEST(DistributionSummary, PercentilesMatchDistribution) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  const DistributionSummary s = summarize(d);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.total, 5050.0);
  EXPECT_EQ(s.p50, d.p50());
  EXPECT_EQ(s.p99, d.p99());
  EXPECT_LT(s.p50, s.p99);
}

TEST(Registry, ResetClearsEverything) {
  Registry r;
  r.counter("c").inc();
  r.distribution("d").add(1);
  r.reset();
  EXPECT_EQ(r.counter_value("c"), 0u);
  EXPECT_EQ(r.find_distribution("d"), nullptr);
}

}  // namespace
}  // namespace ici::metrics
