#include "chain/validator.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

// Fixture: a funded UTXO set with one 1000-unit output owned by `alice`.
class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Transaction seed({}, {TxOutput{1000, alice.pub}}, 1);
    seed_id = seed.txid();
    utxo.apply_tx(seed, 0);
  }

  Transaction spend(Amount pay, Amount change, const KeyPair& signer) {
    std::vector<TxOutput> outs;
    if (pay > 0) outs.push_back(TxOutput{pay, bob.pub});
    if (change > 0) outs.push_back(TxOutput{change, alice.pub});
    Transaction tx({TxInput{OutPoint{seed_id, 0}, {}, {}}}, std::move(outs), 7);
    tx.sign_all_inputs(signer);
    return tx;
  }

  KeyPair alice = KeyPair::from_seed(1);
  KeyPair bob = KeyPair::from_seed(2);
  Hash256 seed_id;
  UtxoSet utxo;
  Validator validator;
};

TEST_F(ValidatorTest, ValidTransactionPasses) {
  const Transaction tx = spend(600, 400, alice);
  EXPECT_TRUE(validator.check_tx_stateless(tx));
  EXPECT_TRUE(validator.check_tx_stateful(tx, utxo));
}

TEST_F(ValidatorTest, NoOutputsFailsStateless) {
  Transaction tx({TxInput{OutPoint{seed_id, 0}, {}, {}}}, {}, 1);
  tx.sign_all_inputs(alice);
  EXPECT_FALSE(validator.check_tx_stateless(tx));
}

TEST_F(ValidatorTest, ZeroValueOutputFailsStateless) {
  Transaction tx({TxInput{OutPoint{seed_id, 0}, {}, {}}}, {TxOutput{0, bob.pub}}, 1);
  tx.sign_all_inputs(alice);
  const auto r = validator.check_tx_stateless(tx);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("zero"), std::string::npos);
}

TEST_F(ValidatorTest, DuplicateInputFailsStateless) {
  Transaction tx({TxInput{OutPoint{seed_id, 0}, {}, {}}, TxInput{OutPoint{seed_id, 0}, {}, {}}},
                 {TxOutput{10, bob.pub}}, 1);
  tx.sign_all_inputs(alice);
  EXPECT_FALSE(validator.check_tx_stateless(tx));
}

TEST_F(ValidatorTest, BadSignatureFailsStateless) {
  const Transaction tx = spend(600, 400, bob);  // bob signs alice's output
  // Stateless check verifies the signature against the embedded pubkey —
  // bob's signature is internally consistent, so stateless passes...
  EXPECT_TRUE(validator.check_tx_stateless(tx));
  // ...but stateful catches that bob does not own the spent output.
  const auto r = validator.check_tx_stateful(tx, utxo);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("own"), std::string::npos);
}

TEST_F(ValidatorTest, CorruptedSignatureFailsStateless) {
  Transaction tx = spend(600, 400, alice);
  // Re-build with a mangled signature.
  auto inputs = tx.inputs();
  inputs[0].sig[0] ^= 0xff;
  Transaction mangled(inputs, tx.outputs(), tx.nonce());
  EXPECT_FALSE(validator.check_tx_stateless(mangled));
}

TEST_F(ValidatorTest, MissingInputFailsStateful) {
  Transaction tx({TxInput{OutPoint{Hash256::of({}), 5}, {}, {}}}, {TxOutput{1, bob.pub}}, 1);
  tx.sign_all_inputs(alice);
  EXPECT_FALSE(validator.check_tx_stateful(tx, utxo));
}

TEST_F(ValidatorTest, OverspendFailsStateful) {
  const Transaction tx = spend(900, 200, alice);  // 1100 > 1000
  EXPECT_FALSE(validator.check_tx_stateful(tx, utxo));
}

TEST_F(ValidatorTest, ExactSpendPasses) {
  const Transaction tx = spend(1000, 0, alice);
  EXPECT_TRUE(validator.check_tx_stateful(tx, utxo));
}

TEST_F(ValidatorTest, CoinbaseWithinRewardPasses) {
  const auto cb = Transaction::coinbase(bob.pub, validator.config().block_reward, 1);
  EXPECT_TRUE(validator.check_tx_stateful(cb, utxo));
}

TEST_F(ValidatorTest, CoinbaseOverRewardFails) {
  const auto cb = Transaction::coinbase(bob.pub, validator.config().block_reward + 1, 1);
  EXPECT_FALSE(validator.check_tx_stateful(cb, utxo));
}

TEST_F(ValidatorTest, HeaderLinkageChecks) {
  BlockHeader h;
  h.parent = Hash256::of({});
  h.height = 5;
  EXPECT_TRUE(validator.check_header(h, Hash256::of({}), 5));
  EXPECT_FALSE(validator.check_header(h, Hash256{}, 5));
  EXPECT_FALSE(validator.check_header(h, Hash256::of({}), 6));
}

// ---- whole-block validation ----

class BlockValidationTest : public ValidatorTest {
 protected:
  Block make_block(std::vector<Transaction> txs, const Hash256& parent,
                   std::uint64_t height = 1) {
    return Block::assemble(parent, height, 1000, std::move(txs));
  }

  Hash256 parent = Hash256::of({});
};

TEST_F(BlockValidationTest, ValidBlockAppliesToUtxo) {
  const Block b = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice)}, parent);
  EXPECT_TRUE(validator.validate_and_apply(b, parent, 1, utxo));
  EXPECT_FALSE(utxo.contains(OutPoint{seed_id, 0}));
  EXPECT_EQ(utxo.size(), 3u);  // coinbase + pay + change
}

TEST_F(BlockValidationTest, EmptyBlockFails) {
  const Block b = make_block({}, parent);
  EXPECT_FALSE(validator.validate_and_apply(b, parent, 1, utxo));
}

TEST_F(BlockValidationTest, MissingCoinbaseFails) {
  const Block b = make_block({spend(600, 400, alice)}, parent);
  const auto r = validator.validate_and_apply(b, parent, 1, utxo);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("coinbase"), std::string::npos);
}

TEST_F(BlockValidationTest, CoinbaseNotFirstFails) {
  const Block b = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice),
       Transaction::coinbase(bob.pub, 50, 2)},
      parent);
  EXPECT_FALSE(validator.validate_and_apply(b, parent, 1, utxo));
}

TEST_F(BlockValidationTest, WrongParentFails) {
  const Block b = make_block({Transaction::coinbase(bob.pub, 50, 1)}, parent);
  EXPECT_FALSE(validator.validate_and_apply(b, Hash256{}, 1, utxo));
}

TEST_F(BlockValidationTest, MerkleMismatchFails) {
  const Block good = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice)}, parent);
  // Same header, different body.
  const Block bad(good.header(), {Transaction::coinbase(bob.pub, 50, 1)});
  EXPECT_FALSE(validator.validate_and_apply(bad, parent, 1, utxo));
}

TEST_F(BlockValidationTest, IntraBlockChainedSpendPasses) {
  // tx2 spends an output created by tx1 inside the same block.
  Transaction tx1 = spend(1000, 0, alice);  // pays bob 1000
  Transaction tx2({TxInput{OutPoint{tx1.txid(), 0}, {}, {}}}, {TxOutput{1000, alice.pub}}, 8);
  tx2.sign_all_inputs(bob);
  const Block b =
      make_block({Transaction::coinbase(bob.pub, 50, 1), tx1, tx2}, parent);
  EXPECT_TRUE(validator.validate_and_apply(b, parent, 1, utxo));
}

TEST_F(BlockValidationTest, IntraBlockDoubleSpendFails) {
  const Block b = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice), spend(500, 500, alice)},
      parent);
  EXPECT_FALSE(validator.validate_and_apply(b, parent, 1, utxo));
}

TEST_F(BlockValidationTest, FailedValidationLeavesUtxoUntouched) {
  const Amount before = utxo.total_value();
  const std::size_t size_before = utxo.size();
  const Block b = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice), spend(500, 500, alice)},
      parent);
  EXPECT_FALSE(validator.validate_and_apply(b, parent, 1, utxo));
  EXPECT_EQ(utxo.total_value(), before);
  EXPECT_EQ(utxo.size(), size_before);
}

TEST_F(BlockValidationTest, TooManyTxsFails) {
  ValidatorConfig cfg;
  cfg.max_block_txs = 2;
  Validator small(cfg);
  const Block b = make_block(
      {Transaction::coinbase(bob.pub, 50, 1), spend(600, 400, alice),
       Transaction::coinbase(bob.pub, 1, 99)},
      parent);
  EXPECT_FALSE(small.validate_and_apply(b, parent, 1, utxo));
}

TEST_F(BlockValidationTest, SignatureCheckingCanBeDisabled) {
  ValidatorConfig cfg;
  cfg.check_signatures = false;
  Validator lax(cfg);
  Transaction tx = spend(600, 400, alice);
  auto inputs = tx.inputs();
  inputs[0].sig[5] ^= 0x10;
  Transaction mangled(inputs, tx.outputs(), tx.nonce());
  EXPECT_TRUE(lax.check_tx_stateless(mangled));
}

}  // namespace
}  // namespace ici
