#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ici::cluster {
namespace {

std::vector<sim::Coord> blob(Rng& rng, double cx, double cy, std::size_t n, double spread) {
  std::vector<sim::Coord> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.normal(cx, spread), rng.normal(cy, spread)});
  }
  return pts;
}

TEST(KMeans, RejectsBadK) {
  std::vector<sim::Coord> pts = {{0, 0}, {1, 1}};
  EXPECT_THROW(kmeans(pts, 0), std::invalid_argument);
  EXPECT_THROW(kmeans(pts, 3), std::invalid_argument);
}

TEST(KMeans, KEqualsOneCentroidIsMean) {
  std::vector<sim::Coord> pts = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  const KMeansResult r = kmeans(pts, 1);
  EXPECT_NEAR(r.centroids[0].x, 1.0, 1e-9);
  EXPECT_NEAR(r.centroids[0].y, 1.0, 1e-9);
  for (std::size_t a : r.assignment) EXPECT_EQ(a, 0u);
}

TEST(KMeans, KEqualsNPerfectFit) {
  std::vector<sim::Coord> pts = {{0, 0}, {10, 0}, {0, 10}};
  const KMeansResult r = kmeans(pts, 3);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeans, SeparatesWellSeparatedBlobs) {
  Rng rng(5);
  auto pts = blob(rng, 0, 0, 50, 1.0);
  const auto far = blob(rng, 100, 100, 50, 1.0);
  pts.insert(pts.end(), far.begin(), far.end());

  const KMeansResult r = kmeans(pts, 2);
  // All points of each blob share a cluster.
  const std::size_t first = r.assignment[0];
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(r.assignment[i], first);
  const std::size_t second = r.assignment[50];
  EXPECT_NE(second, first);
  for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(r.assignment[i], second);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(7);
  auto pts = blob(rng, 0, 0, 40, 5.0);
  auto more = blob(rng, 30, 30, 40, 5.0);
  pts.insert(pts.end(), more.begin(), more.end());
  more = blob(rng, 0, 60, 40, 5.0);
  pts.insert(pts.end(), more.begin(), more.end());

  const double i1 = kmeans(pts, 1).inertia;
  const double i3 = kmeans(pts, 3).inertia;
  const double i8 = kmeans(pts, 8).inertia;
  EXPECT_GT(i1, i3);
  EXPECT_GT(i3, i8);
}

TEST(KMeans, DeterministicForSeed) {
  Rng rng(9);
  const auto pts = blob(rng, 0, 0, 60, 10.0);
  const KMeansResult a = kmeans(pts, 4, {.max_iterations = 100, .seed = 42});
  const KMeansResult b = kmeans(pts, 4, {.max_iterations = 100, .seed = 42});
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<sim::Coord> pts(10, {5, 5});
  const KMeansResult r = kmeans(pts, 3);
  EXPECT_EQ(r.assignment.size(), 10u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeans, AssignmentWithinRange) {
  Rng rng(11);
  const auto pts = blob(rng, 10, 10, 100, 20.0);
  const KMeansResult r = kmeans(pts, 7);
  for (std::size_t a : r.assignment) EXPECT_LT(a, 7u);
}

TEST(KMeans, ConvergesBeforeMaxIterations) {
  Rng rng(13);
  const auto pts = blob(rng, 0, 0, 50, 2.0);
  const KMeansResult r = kmeans(pts, 2, {.max_iterations = 1000, .seed = 1});
  EXPECT_LT(r.iterations, 1000u);
}

}  // namespace
}  // namespace ici::cluster
