#include "cluster/repair.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace ici::cluster {
namespace {

Hash256 block(std::uint64_t i) {
  ByteWriter w;
  w.u64(i);
  return Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
}

std::vector<NodeInfo> members(std::size_t n) {
  std::vector<NodeInfo> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({static_cast<NodeId>(i), {0, 0}, 1.0});
  return out;
}

/// Simulated possession map.
class Holders {
 public:
  void give(NodeId id, const Hash256& h) { map_[id].insert(h); }
  [[nodiscard]] bool holds(NodeId id, const Hash256& h) const {
    const auto it = map_.find(id);
    return it != map_.end() && it->second.contains(h);
  }
  [[nodiscard]] std::function<bool(NodeId, const Hash256&)> fn() const {
    return [this](NodeId id, const Hash256& h) { return holds(id, h); };
  }

 private:
  std::unordered_map<NodeId, std::unordered_set<Hash256, Hash256Hasher>> map_;
};

class RepairTest : public ::testing::Test {
 protected:
  RepairTest() {
    all = members(6);
    for (std::uint64_t i = 0; i < 40; ++i) ledger.push_back({block(i), i});
    // Place every block on its assigned storer (r=1 steady state).
    for (const auto& ref : ledger) {
      holders.give(assigner.storers(ref.hash, ref.height, all, 1)[0], ref.hash);
    }
  }

  RendezvousAssigner assigner;
  std::vector<NodeInfo> all;
  std::vector<BlockRef> ledger;
  Holders holders;
};

TEST_F(RepairTest, SteadyStateNeedsNoRepair) {
  const RepairPlan plan = plan_repair(ledger, all, assigner, 1, holders.fn());
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_TRUE(plan.lost.empty());
}

TEST_F(RepairTest, DepartureWithROneLosesItsBlocks) {
  // Node 0 leaves; its blocks have no other holder → lost within cluster.
  std::vector<NodeInfo> alive(all.begin() + 1, all.end());
  const RepairPlan plan = plan_repair(ledger, alive, assigner, 1, holders.fn());
  std::size_t on_zero = 0;
  for (const auto& ref : ledger) {
    if (assigner.storers(ref.hash, ref.height, all, 1)[0] == 0) ++on_zero;
  }
  EXPECT_EQ(plan.lost.size(), on_zero);
  EXPECT_TRUE(plan.actions.empty());  // nothing to copy from
}

TEST_F(RepairTest, DepartureWithRTwoRepairsFromSurvivor) {
  // Re-place with r=2 so every block has two holders.
  Holders h2;
  for (const auto& ref : ledger) {
    for (NodeId id : assigner.storers(ref.hash, ref.height, all, 2)) h2.give(id, ref.hash);
  }
  std::vector<NodeInfo> alive(all.begin() + 1, all.end());
  const RepairPlan plan = plan_repair(ledger, alive, assigner, 2, h2.fn());
  EXPECT_TRUE(plan.lost.empty());
  // Every action's source actually holds the block, target doesn't.
  for (const RepairAction& a : plan.actions) {
    EXPECT_TRUE(h2.holds(a.source, a.block_hash));
    EXPECT_FALSE(h2.holds(a.target, a.block_hash));
    EXPECT_NE(a.source, 0u);
    EXPECT_NE(a.target, 0u);
  }
  EXPECT_GT(plan.actions.size(), 0u);
}

TEST_F(RepairTest, NoAliveMembersMeansAllLost) {
  const RepairPlan plan = plan_repair(ledger, {}, assigner, 1, holders.fn());
  EXPECT_EQ(plan.lost.size(), ledger.size());
}

TEST_F(RepairTest, ReturningNodeNeedsNoCopies) {
  // Everyone alive and in steady state; the plan over the full set is empty
  // even after a node left and returned (it kept its disk).
  const RepairPlan plan = plan_repair(ledger, all, assigner, 1, holders.fn());
  EXPECT_TRUE(plan.actions.empty());
}

TEST_F(RepairTest, EmptyLedgerIsTrivial) {
  const RepairPlan plan = plan_repair({}, all, assigner, 1, holders.fn());
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_TRUE(plan.lost.empty());
}

TEST_F(RepairTest, RepairTargetsFollowAssignment) {
  // After node 0 leaves with r=2 placement, each repaired block's target is
  // exactly the assignment over the survivors.
  Holders h2;
  for (const auto& ref : ledger) {
    for (NodeId id : assigner.storers(ref.hash, ref.height, all, 2)) h2.give(id, ref.hash);
  }
  std::vector<NodeInfo> alive(all.begin() + 1, all.end());
  const RepairPlan plan = plan_repair(ledger, alive, assigner, 2, h2.fn());
  for (const RepairAction& a : plan.actions) {
    const auto want = assigner.storers(a.block_hash, a.height, alive, 2);
    EXPECT_NE(std::find(want.begin(), want.end(), a.target), want.end());
  }
}

}  // namespace
}  // namespace ici::cluster
