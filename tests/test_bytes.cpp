#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/hex.h"

namespace ici {
namespace {

TEST(ByteWriter, WritesLittleEndianIntegers) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  EXPECT_EQ(to_hex(ByteSpan(w.bytes().data(), w.bytes().size())),
            "ab"
            "3412"
            "efbeadde"
            "0807060504030201");
}

TEST(ByteWriter, BlobPrefixesLength) {
  ByteWriter w;
  const Bytes payload = {1, 2, 3};
  w.blob(payload);
  EXPECT_EQ(w.size(), 4u + 3u);
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.blob(), payload);
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, StrRoundTrips) {
  ByteWriter w;
  w.str("hello");
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.str(), "hello");
}

TEST(ByteReader, RoundTripsAllTypes) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0);
  w.u64(UINT64_MAX);
  w.raw(Bytes{9, 9});
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), UINT64_MAX);
  EXPECT_EQ(r.raw(2), (Bytes{9, 9}));
  r.expect_done("test");
}

TEST(ByteReader, ThrowsOnTruncation) {
  const Bytes short_buf = {1, 2};
  ByteReader r(ByteSpan(short_buf.data(), short_buf.size()));
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(ByteReader, ThrowsOnOversizedBlobLength) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r(ByteSpan(w.bytes().data(), w.bytes().size()));
  EXPECT_THROW((void)r.blob(), DecodeError);
}

TEST(ByteReader, ExpectDoneThrowsOnTrailingBytes) {
  const Bytes buf = {1, 2, 3};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  (void)r.u8();
  EXPECT_THROW(r.expect_done("trailing"), DecodeError);
}

TEST(ByteReader, RemainingTracksPosition) {
  const Bytes buf = {1, 2, 3, 4};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u16();
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Hex, RoundTrips) {
  const Bytes data = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(to_hex(ByteSpan(data.data(), data.size())), "00ff10ab");
  EXPECT_EQ(from_hex("00ff10ab"), data);
  EXPECT_EQ(from_hex("00FF10AB"), data);  // case-insensitive
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), DecodeError);   // odd length
  EXPECT_THROW(from_hex("zz"), DecodeError);    // non-hex
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Ensure, ThrowsLogicErrorWithMessage) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(ensure(false, "broken"), std::logic_error);
}

}  // namespace
}  // namespace ici
