// StorageBackend contract tests (docs/STORAGE.md): the log-structured
// DiskBackend round-trips bodies through segment files, serves staged writes
// warm, recovers its index from a torn-tail log, and compacts dead space —
// and the backend choice never perturbs the deterministic-sim contract:
// `--store mem` adds zero events (bit-identical to the default), `--store
// disk` is bit-identical across shard counts and worker-pool sizes.
#include "storage/disk_backend.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chain/workload.h"
#include "common/thread_pool.h"
#include "ici/network.h"
#include "storage/block_store.h"
#include "storage/store_metrics.h"
#include "storage/store_runtime.h"
#include "sync/serve.h"

namespace ici {
namespace {

namespace fs = std::filesystem;

Chain small_chain(std::size_t blocks = 6) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 4;
  return ChainGenerator(cfg).generate();
}

/// Fresh per-test log directory under the system temp root.
class DiskBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ici-store-test-" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(DiskBackendTest, RoundTripThroughSegments) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  DiskBackend backend(cfg, dir_);

  for (std::size_t h = 1; h < chain.size(); ++h) {
    const Block& b = chain.at_height(h);
    EXPECT_TRUE(backend.put(b.hash(), std::make_shared<const Block>(b)));
  }
  EXPECT_EQ(backend.count(), chain.size() - 1);

  // Synchronous mode (no IoEnv): bodies are on disk already, reads are cold
  // preads that must deserialize to the exact same wire bytes.
  for (std::size_t h = 1; h < chain.size(); ++h) {
    const Block& want = chain.at_height(h);
    bool cold = false;
    std::uint64_t delay = 0;
    const auto got = backend.fetch(want.hash(), &cold, &delay);
    ASSERT_NE(got, nullptr) << "height " << h;
    EXPECT_TRUE(cold);
    EXPECT_EQ(delay, cfg.io_read_us);
    EXPECT_EQ(got->serialize(), want.serialize());
  }
  EXPECT_EQ(backend.counters().cold_reads, chain.size() - 1);
  EXPECT_GT(backend.counters().appended_bytes, 0u);

  // Idempotent re-put; erase frees the serialized size exactly once.
  const Block& b1 = chain.at_height(1);
  EXPECT_FALSE(backend.put(b1.hash(), std::make_shared<const Block>(b1)));
  EXPECT_EQ(backend.erase(b1.hash()), b1.serialized_size());
  EXPECT_FALSE(backend.contains(b1.hash()));
  EXPECT_EQ(backend.erase(b1.hash()), 0u);
  EXPECT_EQ(backend.counters().tombstones, 1u);
}

TEST_F(DiskBackendTest, StagedWritesReadWarmUntilRetired) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  DiskBackend backend(cfg, dir_);

  // Hand-cranked IoEnv: a manual clock plus an event list we retire ourselves,
  // standing in for the facade's simulator lane.
  std::uint64_t now = 0;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> events;
  IoEnv env;
  env.now = [&now] { return now; };
  env.schedule_at = [&events](std::uint64_t at, std::function<void()> fn) {
    events.emplace_back(at, std::move(fn));
  };
  backend.set_io_env(std::move(env));

  const Block& b = chain.at_height(1);
  EXPECT_TRUE(backend.put(b.hash(), std::make_shared<const Block>(b)));
  EXPECT_EQ(backend.counters().staged_puts, 1u);
  EXPECT_EQ(backend.counters().wq_depth, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, cfg.io_write_us);

  // A reader behind the write queue sees its own put, warm and free.
  bool cold = true;
  std::uint64_t delay = 99;
  ASSERT_NE(backend.fetch(b.hash(), &cold, &delay), nullptr);
  EXPECT_FALSE(cold);
  EXPECT_EQ(delay, 0u);
  EXPECT_EQ(backend.counters().warm_reads, 1u);
  EXPECT_EQ(backend.counters().cold_reads, 0u);

  // Retire the append: the body moves to a segment, later reads go cold.
  now = events[0].first;
  events[0].second();
  EXPECT_EQ(backend.counters().wq_retired, 1u);
  EXPECT_EQ(backend.counters().wq_depth, 0u);
  ASSERT_NE(backend.fetch(b.hash(), &cold, &delay), nullptr);
  EXPECT_TRUE(cold);
  EXPECT_GT(delay, 0u);
}

TEST_F(DiskBackendTest, ErasingStagedWriteCancelsTheAppend) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  DiskBackend backend(cfg, dir_);

  std::uint64_t now = 0;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> events;
  IoEnv env;
  env.now = [&now] { return now; };
  env.schedule_at = [&events](std::uint64_t at, std::function<void()> fn) {
    events.emplace_back(at, std::move(fn));
  };
  backend.set_io_env(std::move(env));

  const Block& b = chain.at_height(1);
  backend.put(b.hash(), std::make_shared<const Block>(b));
  EXPECT_EQ(backend.erase(b.hash()), b.serialized_size());
  for (auto& [at, fn] : events) fn();  // stale retirement must be a no-op
  EXPECT_FALSE(backend.contains(b.hash()));
  EXPECT_EQ(backend.counters().appended_bytes, 0u);
  EXPECT_EQ(backend.counters().tombstones, 0u);  // never reached media

  // Cancelling the queue tail reclaims its device slot: the next write
  // retires one service time from now, not queued behind an append that
  // never happened.
  events.clear();
  const Block& b2 = chain.at_height(2);
  backend.put(b2.hash(), std::make_shared<const Block>(b2));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, now + cfg.io_write_us);
}

TEST_F(DiskBackendTest, RecoversIndexAndSkipsTornTail) {
  const Chain chain = small_chain(8);
  StoreConfig cfg;
  cfg.backend = "disk";
  std::vector<Hash256> hashes;
  {
    DiskBackend backend(cfg, dir_);
    for (std::size_t h = 1; h < chain.size(); ++h) {
      const Block& b = chain.at_height(h);
      backend.put(b.hash(), std::make_shared<const Block>(b));
      hashes.push_back(b.hash());
    }
    backend.flush();
  }

  // Tear the log: chop into the last record's payload, simulating a crash
  // mid-append after the manifest was last written.
  fs::path last_seg;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && (last_seg.empty() || name > last_seg.filename())) {
      last_seg = entry.path();
    }
  }
  ASSERT_FALSE(last_seg.empty());
  const std::uint64_t size = fs::file_size(last_seg);
  ASSERT_GT(size, 10u);
  fs::resize_file(last_seg, size - 10);

  DiskBackend reopened(cfg, dir_);
  // Everything except the torn record is back, and the tail was counted.
  EXPECT_EQ(reopened.count(), hashes.size() - 1);
  EXPECT_EQ(reopened.counters().recovered_blocks, hashes.size() - 1);
  EXPECT_GT(reopened.counters().truncated_tail_bytes, 0u);
  for (std::size_t i = 0; i + 1 < hashes.size(); ++i) {
    EXPECT_TRUE(reopened.contains(hashes[i])) << "height " << i + 1;
    const auto got = reopened.fetch(hashes[i], nullptr, nullptr);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->serialize(), chain.at_height(i + 1).serialize());
  }
  EXPECT_FALSE(reopened.contains(hashes.back()));
  // Recovery is idempotent: a re-put of the torn block lands normally.
  const Block& torn = chain.at_height(chain.size() - 1);
  DiskBackend again(cfg, dir_);
  EXPECT_TRUE(again.put(torn.hash(), std::make_shared<const Block>(torn)));
  EXPECT_EQ(again.count(), hashes.size());
}

TEST_F(DiskBackendTest, RecoveryIgnoresForeignSegmentNames) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  std::uint64_t bytes_written = 0;
  {
    DiskBackend backend(cfg, dir_);
    for (std::size_t h = 1; h < chain.size(); ++h) {
      const Block& b = chain.at_height(h);
      backend.put(b.hash(), std::make_shared<const Block>(b));
    }
    bytes_written = backend.counters().segment_bytes;
    backend.flush();
  }

  // Stray files a loose "seg-" prefix match would trip over: a non-numeric
  // suffix used to throw out of std::stoul and abort the open, and a copy
  // like "seg-000000.bak" parsed to the real segment's id, scanning it
  // twice and inflating the byte counters.
  fs::copy_file(dir_ / "seg-000000", dir_ / "seg-000000.bak");
  for (const char* name : {"seg-old", "seg-0000000", "seg-12345"}) {
    std::FILE* f = std::fopen((dir_ / name).string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a segment", f);
    std::fclose(f);
  }

  DiskBackend reopened(cfg, dir_);
  EXPECT_EQ(reopened.count(), chain.size() - 1);
  EXPECT_EQ(reopened.counters().recovered_blocks, chain.size() - 1);
  EXPECT_EQ(reopened.counters().segment_bytes, bytes_written);
  for (std::size_t h = 1; h < chain.size(); ++h) {
    EXPECT_TRUE(reopened.contains(chain.at_height(h).hash())) << "height " << h;
  }
}

// Regression: a batch of cold reads issued at one sim instant completes at
// the *last* read's delay — each fetch's io_delay_us is completion-relative
// and already includes queueing behind the batch's earlier reads — so
// serve_range must aggregate with max. Summing double-counted the queueing
// (k(k+1)/2 * io_read_us for k bodies instead of k * io_read_us).
TEST_F(DiskBackendTest, ServeRangeChargesBatchCompletionNotSum) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  auto backend = std::make_unique<DiskBackend>(cfg, dir_);

  std::uint64_t now = 0;
  std::vector<std::function<void()>> events;
  IoEnv env;
  env.now = [&now] { return now; };
  env.schedule_at = [&events](std::uint64_t, std::function<void()> fn) {
    events.push_back(std::move(fn));
  };
  backend->set_io_env(std::move(env));

  BlockStore store;
  store.set_backend(std::move(backend));
  sync::RangeRequestMsg req;
  req.mode = sync::PullMode::kListedBodies;
  for (std::size_t h = 1; h < chain.size(); ++h) {
    const Block& b = chain.at_height(h);
    store.put(HashedBlock(std::make_shared<const Block>(b), b.hash()));
    req.want.push_back(b.hash());
  }
  for (auto& fn : events) fn();  // retire every staged append: reads go cold

  const sync::ServedRange served = sync::serve_range(store, req);
  const auto* resp = dynamic_cast<const sync::RangeResponseMsg*>(served.msg.get());
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp->bodies.size(), chain.size() - 1);
  EXPECT_EQ(served.io_delay_us, (chain.size() - 1) * cfg.io_read_us);
}

TEST_F(DiskBackendTest, CompactionReclaimsDeadSpace) {
  const Chain chain = small_chain(10);
  StoreConfig cfg;
  cfg.backend = "disk";
  cfg.segment_bytes = 1024;  // force several small segments
  DiskBackend backend(cfg, dir_);

  for (std::size_t h = 1; h < chain.size(); ++h) {
    const Block& b = chain.at_height(h);
    backend.put(b.hash(), std::make_shared<const Block>(b));
  }
  const std::uint64_t before = backend.counters().segment_bytes;
  ASSERT_GT(backend.counters().segments, 1u);

  // Kill most of the log; the dead fraction crosses compact_threshold.
  for (std::size_t h = 1; h + 2 < chain.size(); ++h) {
    EXPECT_GT(backend.erase(chain.at_height(h).hash()), 0u);
  }
  EXPECT_GE(backend.counters().compactions, 1u);
  EXPECT_GT(backend.counters().reclaimed_bytes, 0u);
  EXPECT_LT(backend.counters().segment_bytes, before);

  // Survivors stay readable through the rewritten log.
  for (std::size_t h = chain.size() - 2; h < chain.size(); ++h) {
    const Block& want = chain.at_height(h);
    const auto got = backend.fetch(want.hash(), nullptr, nullptr);
    ASSERT_NE(got, nullptr) << "height " << h;
    EXPECT_EQ(got->serialize(), want.serialize());
  }
  // And the compacted log reopens to exactly the survivor set.
  backend.flush();
  DiskBackend reopened(cfg, dir_);
  EXPECT_EQ(reopened.count(), 2u);
}

// Regression: reusing a caller-supplied root must not let DiskBackend
// recovery resurrect a previous run's segments (stale blocks would flip
// dup_puts/warm-read behaviour and break run-to-run reproducibility). The
// root itself survives teardown; only the per-node logs start fresh.
TEST_F(DiskBackendTest, StoreRuntimeClearsReusedSuppliedDir) {
  const Chain chain = small_chain();
  StoreConfig cfg;
  cfg.backend = "disk";
  cfg.dir = dir_.string();
  {
    const StoreRuntime runtime(cfg);
    const auto backend = runtime.make_backend(0);
    ASSERT_NE(backend, nullptr);
    const Block& b = chain.at_height(1);
    backend->put(b.hash(), std::make_shared<const Block>(b));
    backend->flush();
  }
  ASSERT_TRUE(fs::exists(dir_ / "node-0"));  // supplied dir survives teardown

  const StoreRuntime reused(cfg);
  const auto backend = reused.make_backend(0);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->count(), 0u);
  EXPECT_EQ(backend->counters().recovered_blocks, 0u);
  EXPECT_FALSE(backend->contains(chain.at_height(1).hash()));
}

// --- determinism contract ---------------------------------------------------

struct RunFingerprint {
  std::vector<sim::SimTime> commit_latency;
  std::uint64_t traffic_bytes = 0;
  std::uint64_t traffic_msgs = 0;
  std::map<std::string, std::uint64_t> counters;

  bool operator==(const RunFingerprint&) const = default;
};

/// Shard instrumentation describes the engine configuration, not the run
/// (same exclusion set as test_shard_determinism).
bool excluded_from_identity(std::string_view name) {
  return name.rfind("sim.shard", 0) == 0 || name == "sim.peak_pending" ||
         name == "sim.far_events";
}

RunFingerprint run_ici(const StoreConfig& store, std::size_t shards) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 24;
  ccfg.workload.wallet_count = 16;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig ncfg;
  ncfg.node_count = 24;
  ncfg.ici.cluster_count = 3;
  ncfg.shards = shards;
  ncfg.store = store;
  core::IciNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);

  RunFingerprint fp;
  for (int i = 0; i < 5; ++i) {
    chain.append(gen.next_block(chain));
    fp.commit_latency.push_back(net.disseminate_and_settle(chain.tip()));
  }
  const auto traffic = net.network().total_traffic();
  fp.traffic_bytes = traffic.bytes_sent;
  fp.traffic_msgs = traffic.msgs_sent;
  for (const auto& [name, counter] : net.metrics().counters()) {
    if (excluded_from_identity(name)) continue;
    fp.counters[name] = counter.value();
  }
  return fp;
}

TEST(StoreDeterminism, MemBackendAddsZeroEvents) {
  // Selecting mem explicitly — with IO knobs set, which mem must ignore —
  // is bit-identical to the unconfigured default.
  StoreConfig mem;
  mem.backend = "mem";
  mem.io_write_us = 500;
  mem.io_read_us = 700;
  EXPECT_EQ(run_ici(StoreConfig{}, 1), run_ici(mem, 1));
}

TEST(StoreDeterminism, DiskIdenticalAcrossShardsAndThreads) {
  StoreConfig disk;
  disk.backend = "disk";
  const RunFingerprint base = run_ici(disk, 1);

  // The write queue is live (IO events were scheduled and all retired by
  // settle) — yet commit latency matches the mem run exactly: staging
  // decouples verification from the append, and dissemination-time reads
  // hit the write queue warm. Persistence costs show up on cold paths
  // (bootstrap, historical retrieval — exp24), not in the commit pipeline.
  ASSERT_TRUE(base.counters.count("store.staged_puts"));
  EXPECT_GT(base.counters.at("store.staged_puts"), 0u);
  EXPECT_EQ(base.counters.at("store.wq_retired"), base.counters.at("store.wq_enqueued"));
  EXPECT_EQ(base.commit_latency, run_ici(StoreConfig{}, 1).commit_latency);

  // And the IO-event schedule never depends on the lane count or pool size.
  EXPECT_EQ(base, run_ici(disk, 2));
  ThreadPool::set_global_threads(4);
  EXPECT_EQ(base, run_ici(disk, 1));
  EXPECT_EQ(base, run_ici(disk, 2));
  ThreadPool::set_global_threads(1);
}

TEST(StoreDeterminism, DiskBackedStoreKeepsByteAccounting) {
  // The paper's storage tables must not move with the backend: same chain,
  // same assignment, same per-node byte tallies whether bodies live in
  // memory or in segment files.
  StoreConfig disk;
  disk.backend = "disk";
  const Chain chain = small_chain(6);

  auto storage_of = [&chain](const StoreConfig& store) {
    core::IciNetworkConfig ncfg;
    ncfg.node_count = 12;
    ncfg.ici.cluster_count = 2;
    ncfg.store = store;
    core::IciNetwork net(ncfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);
    const auto snap = net.storage_snapshot();
    return std::pair<double, double>(snap.mean_bytes, snap.max_bytes);
  };
  EXPECT_EQ(storage_of(StoreConfig{}), storage_of(disk));
}

}  // namespace
}  // namespace ici
