// Protocol-level tests of the ICIStrategy network: dissemination commits in
// every cluster, storage follows the assignment, UTXO shards stay globally
// consistent, retrieval and repair work.
#include "ici/network.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "chain/workload.h"
#include "ici/retrieval.h"
#include "storage/storage_meter.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(std::size_t nodes = 24, std::size_t clusters = 3, std::size_t replication = 1,
               std::size_t txs_per_block = 12) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.wallet_count = 16;
    gen = std::make_unique<ChainGenerator>(ccfg);

    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    ncfg.ici.replication = replication;
    net = std::make_unique<IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  /// Produces and disseminates one block; returns full-commit latency.
  sim::SimTime step() {
    Block b = gen->next_block(*chain);
    chain->append(b);
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(IciNetwork, RejectsInvalidConfigs) {
  IciNetworkConfig cfg;
  cfg.node_count = 4;
  cfg.ici.cluster_count = 8;
  EXPECT_THROW(IciNetwork bad(cfg), std::invalid_argument);

  IciNetworkConfig cfg2;
  cfg2.ici.cluster_count = 0;
  EXPECT_THROW(IciNetwork bad2(cfg2), std::invalid_argument);
}

TEST(IciNetwork, DisseminationCommitsInEveryCluster) {
  Rig rig;
  const sim::SimTime latency = rig.step();
  EXPECT_GT(latency, 0u) << "block did not reach full commit";
  // One commit per cluster.
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 3u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.rounds_started"), 3u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.aborted"), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.slice_rejected"), 0u);
}

TEST(IciNetwork, EveryClusterStoresEveryBlockExactlyRTimes) {
  Rig rig(24, 3, 1);
  for (int i = 0; i < 5; ++i) ASSERT_GT(rig.step(), 0u);

  auto& dir = rig.net->directory();
  for (std::uint64_t h = 1; h <= rig.chain->height(); ++h) {
    const Hash256 hash = rig.chain->at_height(h).hash();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      std::size_t holders = 0;
      for (auto id : dir.members(c)) {
        if (rig.net->node(id).store().has_block(hash)) ++holders;
      }
      EXPECT_EQ(holders, 1u) << "height " << h << " cluster " << c;
      // And the holder is the assigned storer.
      const auto assigned = rig.net->storers_of(hash, h, c, false);
      EXPECT_TRUE(rig.net->node(assigned[0]).store().has_block(hash));
    }
  }
}

TEST(IciNetwork, ReplicationFactorHonored) {
  Rig rig(24, 2, 3);
  for (int i = 0; i < 3; ++i) ASSERT_GT(rig.step(), 0u);
  auto& dir = rig.net->directory();
  for (std::uint64_t h = 1; h <= rig.chain->height(); ++h) {
    const Hash256 hash = rig.chain->at_height(h).hash();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      std::size_t holders = 0;
      for (auto id : dir.members(c)) {
        if (rig.net->node(id).store().has_block(hash)) ++holders;
      }
      EXPECT_EQ(holders, 3u) << "height " << h << " cluster " << c;
    }
  }
}

TEST(IciNetwork, AllNodesHoldAllHeaders) {
  Rig rig;
  for (int i = 0; i < 4; ++i) ASSERT_GT(rig.step(), 0u);
  for (std::size_t id = 0; id < rig.net->node_count(); ++id) {
    EXPECT_EQ(rig.net->node(static_cast<cluster::NodeId>(id)).store().header_count(),
              rig.chain->size())
        << "node " << id;
  }
}

TEST(IciNetwork, UtxoShardsUnionMatchesReplayedState) {
  Rig rig;
  for (int i = 0; i < 5; ++i) ASSERT_GT(rig.step(), 0u);

  // Ground truth by replaying the chain.
  UtxoSet expected;
  for (const Block& b : rig.chain->blocks()) {
    for (const Transaction& tx : b.txs()) expected.apply_tx(tx, b.header().height);
  }

  auto& dir = rig.net->directory();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    std::unordered_map<OutPoint, TxOutput, OutPointHasher> combined;
    for (auto id : dir.members(c)) {
      for (const auto& [op, out] : rig.net->node(id).utxo_shard()) {
        EXPECT_TRUE(combined.emplace(op, out).second)
            << "outpoint owned by two members of cluster " << c;
        // Ownership matches the rendezvous rule.
        EXPECT_EQ(rig.net->utxo_owner(op, c), id);
      }
    }
    EXPECT_EQ(combined.size(), expected.size()) << "cluster " << c;
    for (const auto& [op, out] : combined) {
      const auto entry = expected.find(op);
      ASSERT_TRUE(entry.has_value());
      EXPECT_EQ(entry->output.value, out.value);
    }
  }
}

TEST(IciNetwork, PerNodeStorageIsFractionOfLedger) {
  Rig rig(30, 3, 1);
  for (int i = 0; i < 6; ++i) ASSERT_GT(rig.step(), 0u);

  const auto stores = rig.net->stores();
  const StorageSnapshot snap = StorageMeter::snapshot(stores);
  const double ledger = static_cast<double>(rig.chain->total_bytes());
  // k clusters × r copies of the ledger, split over all N nodes on average.
  const double expected_mean =
      ledger * 3.0 / 30.0 + static_cast<double>(rig.chain->size()) * BlockHeader::kWireSize;
  EXPECT_NEAR(snap.mean_bytes, expected_mean, expected_mean * 0.15);
  // Nobody stores the whole ledger.
  EXPECT_LT(snap.max_bytes, ledger * 0.9);
}

TEST(IciNetwork, PreloadMatchesAssignmentWithoutTraffic) {
  Rig rig;
  ChainGenConfig ccfg;
  ccfg.blocks = 8;
  ccfg.txs_per_block = 4;
  const Chain chain = ChainGenerator(ccfg).generate();
  // Separate network preloaded with the same chain: zero traffic.
  IciNetworkConfig ncfg;
  ncfg.node_count = 20;
  ncfg.ici.cluster_count = 2;
  IciNetwork net(ncfg);
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain);

  EXPECT_EQ(net.network().total_traffic().bytes_sent, 0u);
  EXPECT_EQ(net.committed().size(), chain.size());
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    const Hash256 hash = chain.at_height(h).hash();
    for (std::size_t c = 0; c < net.directory().cluster_count(); ++c) {
      const auto storers = net.storers_of(hash, h, c, false);
      for (auto id : storers) EXPECT_TRUE(net.node(id).store().has_block(hash));
    }
  }
}

TEST(IciNetwork, RetrievalFetchesRemoteBlocks) {
  Rig rig;
  for (int i = 0; i < 4; ++i) ASSERT_GT(rig.step(), 0u);

  const RetrievalStats stats = RetrievalDriver::run(*rig.net, 20, 7);
  EXPECT_EQ(stats.misses(), 0u);
  EXPECT_GT(stats.remote_hits + stats.local_hits, 0u);
  if (stats.remote_hits > 0) {
    EXPECT_GT(stats.latency_us.mean(), 0.0);
  }
}

TEST(IciNetwork, FetchReturnsCorrectBlock) {
  Rig rig;
  ASSERT_GT(rig.step(), 0u);
  const Block& target = rig.chain->at_height(1);

  // Find a node that does NOT hold the body.
  cluster::NodeId requester = cluster::kNoNode;
  for (std::size_t id = 0; id < rig.net->node_count(); ++id) {
    if (!rig.net->node(static_cast<cluster::NodeId>(id)).store().has_block(target.hash())) {
      requester = static_cast<cluster::NodeId>(id);
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);

  bool got = false;
  rig.net->node(requester).fetch_block(
      target.hash(), 1, [&](const FetchResult& r) {
        ASSERT_NE(r.block, nullptr);
        EXPECT_EQ(r.block->hash(), target.hash());
        EXPECT_EQ(r.outcome, FetchOutcome::kRemote);
        EXPECT_GT(r.elapsed_us, 0u);
        got = true;
      });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(IciNetwork, CommunicationFarBelowFullBroadcast) {
  Rig rig(30, 3, 1, 20);
  rig.net->network().reset_traffic();
  ASSERT_GT(rig.step(), 0u);
  const Block& b = rig.chain->tip();
  const auto traffic = rig.net->network().total_traffic();
  // Full replication would ship ≥ N copies of the body; ICI should ship far
  // fewer (roughly (2 + r) per cluster plus small messages).
  const double block_copies =
      static_cast<double>(traffic.bytes_sent) / static_cast<double>(b.serialized_size());
  EXPECT_LT(block_copies, 30.0 * 0.7);
  EXPECT_GT(block_copies, 3.0);  // sanity: at least one copy per cluster
}

TEST(IciNetwork, RepairRestoresAvailabilityAfterOfflineWithR2) {
  Rig rig(20, 2, 2);
  for (int i = 0; i < 4; ++i) ASSERT_GT(rig.step(), 0u);
  EXPECT_NEAR(rig.net->availability(), 1.0, 1e-9);

  // Knock a node offline and repair its cluster.
  auto& dir = rig.net->directory();
  const cluster::NodeId victim = dir.members(0).front();
  rig.net->network().set_online(victim, false);
  dir.set_online(victim, false);
  rig.net->repair_cluster(0);
  rig.net->settle();

  // With r=2 every block still has an online holder, and repair re-created
  // second copies where the victim was a holder.
  EXPECT_NEAR(rig.net->availability(), 1.0, 1e-9);
}

TEST(IciNetwork, AvailabilityDropsWhenSoleHolderOffline) {
  Rig rig(12, 1, 1);
  for (int i = 0; i < 5; ++i) ASSERT_GT(rig.step(), 0u);

  auto& dir = rig.net->directory();
  // Take the holder of block 1 offline; r=1 means no other copy exists.
  const Hash256 hash = rig.chain->at_height(1).hash();
  const auto storers = rig.net->storers_of(hash, 1, 0, false);
  rig.net->network().set_online(storers[0], false);
  dir.set_online(storers[0], false);
  EXPECT_LT(rig.net->availability(), 1.0);
}

TEST(IciNetwork, ChurnWithRepairKeepsMostBlocksAvailable) {
  Rig rig(24, 2, 2);
  for (int i = 0; i < 4; ++i) ASSERT_GT(rig.step(), 0u);

  sim::ChurnConfig churn;
  churn.churn_fraction = 0.3;
  churn.mean_uptime_us = 5'000'000;
  churn.mean_downtime_us = 2'000'000;
  rig.net->start_churn(churn);
  rig.net->simulator().run_until(rig.net->simulator().now() + 30'000'000);

  EXPECT_GT(rig.net->availability(), 0.9);
  EXPECT_GT(rig.net->metrics().counter_value("churn.down"), 0u);
}

}  // namespace
}  // namespace ici::core
