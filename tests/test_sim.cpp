#include <gtest/gtest.h>

#include "sim/churn.h"
#include "sim/network.h"
#include "sim/simulator.h"

#include <unordered_set>

namespace ici::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(7, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.run_next(), std::logic_error);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = 0;
  sim.after(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.after(10, [&] {
    times.push_back(sim.now());
    sim.after(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(10, [&] { ++fired; });
  sim.after(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, MaxEventsLimit) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.after(i + 1, [&] { ++fired; });
  sim.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, AtClampsToNowAndCountsLateEvents) {
  Simulator sim;
  EXPECT_EQ(sim.late_events(), 0u);
  sim.after(100, [&] {
    // Scheduling in the past runs "now", not before — and is counted, so
    // experiments can detect protocol logic scheduling into the past.
    sim.at(5, [&] { EXPECT_GE(sim.now(), 100u); });
    sim.at(100, [&] {});  // exactly-now is not late
  });
  sim.run();
  EXPECT_EQ(sim.late_events(), 1u);
}

TEST(Simulator, QueueStatsTrackExecutionAndPeak) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.after(i, [] {});
  EXPECT_EQ(sim.queue_stats().scheduled, 10u);
  EXPECT_EQ(sim.queue_stats().peak_pending, 10u);
  sim.run();
  EXPECT_EQ(sim.queue_stats().executed, 10u);
  EXPECT_EQ(sim.queue_stats().heap_fallback_events, 0u);
}

// -- network ---------------------------------------------------------------

class Recorder : public INode {
 public:
  void on_message(NodeId from, const MessagePtr& msg) override {
    received.push_back({from, msg});
  }
  std::vector<std::pair<NodeId, MessagePtr>> received;
};

struct TestMsg final : MessageBase {
  std::size_t size;
  explicit TestMsg(std::size_t s) : size(s) {}
  [[nodiscard]] std::size_t wire_size() const override { return size; }
  [[nodiscard]] const char* type_name() const override { return "Test"; }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net(sim, make_config()) {
    a = net.add_node(&ra, {0, 0});
    b = net.add_node(&rb, {3, 4});  // distance 5
  }

  static NetworkConfig make_config() {
    NetworkConfig cfg;
    cfg.base_propagation_us = 1000;
    cfg.us_per_distance_unit = 100;
    cfg.jitter_stddev_us = 0;  // deterministic latency for assertions
    cfg.default_uplink_bps = 1e6;
    cfg.per_message_overhead = 0;
    return cfg;
  }

  Simulator sim;
  Network net;
  Recorder ra, rb;
  NodeId a = 0, b = 0;
};

TEST_F(NetworkTest, DeliversWithPropagationAndTransferDelay) {
  net.send(a, b, std::make_shared<TestMsg>(1'000'000));  // 1 s transfer at 1 MB/s
  sim.run();
  ASSERT_EQ(rb.received.size(), 1u);
  // transfer 1e6 us + propagation 1000 + 5*100 = 1'001'500 us.
  EXPECT_EQ(sim.now(), 1'001'500u);
}

TEST_F(NetworkTest, UplinkSerializesBackToBackSends) {
  Recorder rc;
  const NodeId c = net.add_node(&rc, {3, 4});
  net.send(a, b, std::make_shared<TestMsg>(1'000'000));
  net.send(a, c, std::make_shared<TestMsg>(1'000'000));
  sim.run();
  ASSERT_EQ(rb.received.size(), 1u);
  ASSERT_EQ(rc.received.size(), 1u);
  // Second message waits for the first transfer: 2e6 + prop.
  EXPECT_EQ(sim.now(), 2'001'500u);
}

TEST_F(NetworkTest, TrafficAccounting) {
  net.send(a, b, std::make_shared<TestMsg>(500));
  sim.run();
  EXPECT_EQ(net.traffic(a).msgs_sent, 1u);
  EXPECT_EQ(net.traffic(a).bytes_sent, 500u);
  EXPECT_EQ(net.traffic(b).msgs_received, 1u);
  EXPECT_EQ(net.traffic(b).bytes_received, 500u);
  const NodeTraffic total = net.total_traffic();
  EXPECT_EQ(total.bytes_sent, 500u);
  EXPECT_EQ(total.bytes_received, 500u);
}

TEST_F(NetworkTest, PerMessageOverheadCharged) {
  NetworkConfig cfg = make_config();
  cfg.per_message_overhead = 64;
  Simulator s2;
  Network n2(s2, cfg);
  Recorder r1, r2;
  const NodeId x = n2.add_node(&r1, {0, 0});
  const NodeId y = n2.add_node(&r2, {1, 0});
  n2.send(x, y, std::make_shared<TestMsg>(100));
  s2.run();
  EXPECT_EQ(n2.traffic(x).bytes_sent, 164u);
}

TEST_F(NetworkTest, OfflineReceiverDropsMessage) {
  net.set_online(b, false);
  net.send(a, b, std::make_shared<TestMsg>(10));
  sim.run();
  EXPECT_TRUE(rb.received.empty());
  // Sender was still charged (it cannot know).
  EXPECT_EQ(net.traffic(a).bytes_sent, 10u);
  EXPECT_EQ(net.traffic(b).bytes_received, 0u);
}

TEST_F(NetworkTest, OfflineSenderSendsNothing) {
  net.set_online(a, false);
  net.send(a, b, std::make_shared<TestMsg>(10));
  sim.run();
  EXPECT_TRUE(rb.received.empty());
  EXPECT_EQ(net.traffic(a).bytes_sent, 0u);
}

TEST_F(NetworkTest, SelfSendDeliversLocally) {
  net.send(a, a, std::make_shared<TestMsg>(10));
  sim.run();
  ASSERT_EQ(ra.received.size(), 1u);
  EXPECT_EQ(ra.received[0].first, a);
  EXPECT_LE(sim.now(), 2u);  // no network delay
}

TEST_F(NetworkTest, MulticastSkipsSelf) {
  Recorder rc;
  const NodeId c = net.add_node(&rc, {1, 1});
  net.multicast(a, {a, b, c}, std::make_shared<TestMsg>(10));
  sim.run();
  EXPECT_TRUE(ra.received.empty());
  EXPECT_EQ(rb.received.size(), 1u);
  EXPECT_EQ(rc.received.size(), 1u);
}

TEST_F(NetworkTest, PropagationSymmetric) {
  EXPECT_DOUBLE_EQ(net.propagation_us(a, b), net.propagation_us(b, a));
  EXPECT_DOUBLE_EQ(net.propagation_us(a, b), 1000 + 5 * 100);
}

TEST_F(NetworkTest, ResetTrafficClears) {
  net.send(a, b, std::make_shared<TestMsg>(10));
  sim.run();
  net.reset_traffic();
  EXPECT_EQ(net.total_traffic().bytes_sent, 0u);
}

TEST_F(NetworkTest, UnknownNodeThrows) {
  EXPECT_THROW(net.send(a, 999, std::make_shared<TestMsg>(1)), std::out_of_range);
  EXPECT_THROW((void)net.traffic(999), std::out_of_range);
}

TEST_F(NetworkTest, MulticastMatchesSendLoopExactly) {
  // The fan-out path hoists wire-size/transfer math and shares the message
  // pointer, but must charge the same bytes and draw the same per-recipient
  // jitter stream as repeated send() calls. Two identically-seeded networks,
  // one driven each way, must therefore finish at the identical sim time.
  NetworkConfig cfg = make_config();
  cfg.jitter_stddev_us = 750;  // jitter ON so the RNG draw order matters

  Simulator s1, s2;
  Network n1(s1, cfg), n2(s2, cfg);
  Recorder r1, r2;
  std::vector<NodeId> peers1, peers2;
  const NodeId src1 = n1.add_node(&r1, {0, 0});
  const NodeId src2 = n2.add_node(&r2, {0, 0});
  for (int i = 0; i < 6; ++i) {
    const Coord c{static_cast<double>(i), 2.0};
    peers1.push_back(n1.add_node(&r1, c));
    peers2.push_back(n2.add_node(&r2, c));
  }

  auto msg = std::make_shared<TestMsg>(50'000);
  n1.multicast(src1, peers1, msg);
  for (NodeId t : peers2) n2.send(src2, t, msg);
  s1.run();
  s2.run();

  EXPECT_EQ(r1.received.size(), 6u);
  EXPECT_EQ(s1.now(), s2.now());
  EXPECT_EQ(n1.total_traffic().bytes_sent, n2.total_traffic().bytes_sent);
  EXPECT_EQ(n1.traffic(src1).msgs_sent, n2.traffic(src2).msgs_sent);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// -- churn -------------------------------------------------------------------

TEST(Churn, TogglesSelectedNodes) {
  Simulator sim;
  NetworkConfig ncfg;
  Network net(sim, ncfg);
  Recorder r;
  std::vector<NodeId> ids;
  for (int i = 0; i < 50; ++i) ids.push_back(net.add_node(&r, {0, 0}));

  ChurnConfig cfg;
  cfg.churn_fraction = 0.5;
  cfg.mean_uptime_us = 1000;
  cfg.mean_downtime_us = 1000;
  cfg.seed = 3;
  ChurnModel churn(net, cfg);

  std::unordered_set<NodeId> changed;
  int downs = 0, ups = 0;
  churn.start(ids, [&](NodeId id, bool online) {
    changed.insert(id);
    (online ? ups : downs)++;
  });
  EXPECT_GT(churn.churned_nodes().size(), 10u);
  EXPECT_LT(churn.churned_nodes().size(), 40u);

  sim.run_until(20'000);
  EXPECT_GT(downs, 0);
  EXPECT_GT(ups, 0);
  // Only churned nodes ever change.
  for (NodeId id : changed) {
    EXPECT_NE(std::find(churn.churned_nodes().begin(), churn.churned_nodes().end(), id),
              churn.churned_nodes().end());
  }
}

TEST(Churn, ZeroFractionChurnsNobody) {
  Simulator sim;
  Network net(sim, {});
  Recorder r;
  std::vector<NodeId> ids = {net.add_node(&r, {0, 0})};
  ChurnConfig cfg;
  cfg.churn_fraction = 0.0;
  ChurnModel churn(net, cfg);
  churn.start(ids, nullptr);
  EXPECT_TRUE(churn.churned_nodes().empty());
}

}  // namespace
}  // namespace ici::sim
