// Edge cases of the ICI protocol machinery: degenerate clusters, offline
// heads, duplicate deliveries, late votes, invalid proposals.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(std::size_t nodes = 16, std::size_t clusters = 2,
               std::size_t txs_per_block = 6) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    gen = std::make_unique<ChainGenerator>(ccfg);
    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    net = std::make_unique<IciNetwork>(ncfg);
    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }
  Block next() {
    chain->append(gen->next_block(*chain));
    return chain->tip();
  }
  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(EdgeCases, SingleClusterNetworkWorks) {
  Rig rig(8, 1);
  rig.next();
  EXPECT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 1u);
}

TEST(EdgeCases, ClusterOfOneCommitsAlone) {
  // k == N: every cluster has exactly one member who is head, verifier,
  // and storer simultaneously.
  Rig rig(4, 4);
  rig.next();
  EXPECT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 4u);
}

TEST(EdgeCases, CoinbaseOnlyBlockCommits) {
  // Fewer txs than members: most slices are empty; everyone still votes.
  Rig rig(16, 2, /*txs_per_block=*/0);
  rig.next();
  EXPECT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.slice_rejected"), 0u);
}

TEST(EdgeCases, DarkClusterIsSkippedAtProposal) {
  Rig rig(16, 2);
  // Take all of cluster 1 offline.
  for (auto id : rig.net->directory().members(1)) {
    rig.net->network().set_online(id, false);
    rig.net->directory().set_online(id, false);
  }
  rig.next();
  // Full commit never happens (cluster 1 can't commit), but cluster 0 does.
  EXPECT_EQ(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 1u);
  EXPECT_EQ(rig.net->metrics().counter_value("propose.headless_cluster"), 1u);
}

TEST(EdgeCases, DuplicateProposalIsIdempotent) {
  Rig rig;
  const Block block = rig.next();
  EXPECT_GT(rig.net->disseminate_and_settle(block), 0u);
  const auto commits = rig.net->metrics().counter_value("commit.count");
  // Proposing the same block again: heads ignore it (already stored or in
  // flight) and no double-commit happens.
  rig.net->disseminate(block);
  rig.net->settle();
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), commits);
}

TEST(EdgeCases, TamperedBlockRejectedByHead) {
  Rig rig;
  Block good = rig.next();
  // Same header, body with a swapped tx order → Merkle mismatch.
  std::vector<Transaction> txs = good.txs();
  std::swap(txs[1], txs[2]);
  const Block bad(good.header(), std::move(txs));
  EXPECT_EQ(rig.net->disseminate_and_settle(bad), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("verify.head_rejected"), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 0u);
}

TEST(EdgeCases, DoubleSpendBlockRejectedByHead) {
  Rig rig;
  const Block good = rig.next();
  // Duplicate a non-coinbase tx: duplicate outpoints across the block.
  std::vector<Transaction> txs = good.txs();
  txs.push_back(txs[1]);
  const Block bad = Block::assemble(good.header().parent, good.header().height,
                                    good.header().timestamp_us, std::move(txs));
  EXPECT_EQ(rig.net->disseminate_and_settle(bad), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("verify.head_rejected"), 0u);
}

TEST(EdgeCases, SpendOfUnknownOutpointRejectedByMembers) {
  Rig rig;
  Block good = rig.next();
  // Append a tx spending an outpoint that does not exist.
  std::vector<Transaction> txs = good.txs();
  const KeyPair key = KeyPair::from_seed(999);
  Transaction phantom({TxInput{OutPoint{Hash256::tagged("ghost", {}), 0}, {}, {}}},
                      {TxOutput{5, key.pub}}, 77);
  phantom.sign_all_inputs(key);
  txs.push_back(std::move(phantom));
  const Block bad = Block::assemble(good.header().parent, good.header().height,
                                    good.header().timestamp_us, std::move(txs));
  EXPECT_EQ(rig.net->disseminate_and_settle(bad), 0u);
  EXPECT_GT(rig.net->metrics().counter_value("verify.slice_rejected"), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("commit.count"), 0u);
}

TEST(EdgeCases, AllVotesCountedNoneLate) {
  // The head waits for every online member's vote before committing (a
  // pending vote may carry a fraud challenge), so in a healthy cluster no
  // vote arrives after the decision.
  Rig rig(24, 1, 12);
  rig.next();
  ASSERT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.slice_approved"), 24u);
  EXPECT_EQ(rig.net->metrics().counter_value("verify.late_votes"), 0u);
}

TEST(EdgeCases, FetchUnknownBlockMissesCleanly) {
  Rig rig;
  rig.next();
  ASSERT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
  bool called = false;
  rig.net->node(0).fetch_block(Hash256::tagged("never", {}), 99, [&](const FetchResult& r) {
    called = true;
    EXPECT_EQ(r.block, nullptr);
    EXPECT_EQ(r.outcome, FetchOutcome::kNotFound);
  });
  rig.net->settle();
  EXPECT_TRUE(called);
  EXPECT_GT(rig.net->metrics().counter_value("retrieval.misses"), 0u);
}

TEST(EdgeCases, OfflineProposerIsSkipped) {
  Rig rig;
  // Knock out node 0 (the first rotating proposer).
  rig.net->network().set_online(0, false);
  rig.net->directory().set_online(0, false);
  rig.next();
  EXPECT_GT(rig.net->disseminate_and_settle(rig.chain->tip()), 0u);
}

TEST(EdgeCases, ReplicationLargerThanClusterClamps) {
  Rig rig_big_r(8, 2);
  IciNetworkConfig cfg;
  cfg.node_count = 8;
  cfg.ici.cluster_count = 2;
  cfg.ici.replication = 100;  // > cluster size 4
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 4;
  ChainGenerator gen(ccfg);
  IciNetwork net(cfg);
  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  chain.append(gen.next_block(chain));
  EXPECT_GT(net.disseminate_and_settle(chain.tip()), 0u);
  // Every member of every cluster ends up a storer (full replication within
  // the cluster) — no crash, no over-count.
  for (std::size_t c = 0; c < 2; ++c) {
    for (auto id : net.directory().members(c)) {
      EXPECT_TRUE(net.node(id).store().has_block(chain.tip().hash()));
    }
  }
}

}  // namespace
}  // namespace ici::core
