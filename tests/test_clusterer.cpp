#include "cluster/clusterer.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

namespace ici::cluster {
namespace {

std::unique_ptr<Clusterer> make(const std::string& name) {
  if (name == "kmeans") return std::make_unique<KMeansClusterer>(1);
  if (name == "random") return std::make_unique<RandomClusterer>(1);
  return std::make_unique<GridClusterer>();
}

struct Case {
  std::string clusterer;
  std::size_t n;
  std::size_t k;
};

class PartitionValidity : public ::testing::TestWithParam<Case> {};

TEST_P(PartitionValidity, EveryNodeExactlyOnceNoEmptyClusters) {
  const Case c = GetParam();
  const auto nodes = generate_topology(c.n, 5, 42);
  const Clustering clustering = make(c.clusterer)->cluster(nodes, c.k);

  EXPECT_EQ(clustering.cluster_count(), c.k);
  std::unordered_set<NodeId> seen;
  for (const auto& members : clustering.clusters) {
    EXPECT_FALSE(members.empty());
    for (NodeId id : members) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), c.n);
}

INSTANTIATE_TEST_SUITE_P(
    AllClusterers, PartitionValidity,
    ::testing::Values(Case{"kmeans", 64, 4}, Case{"kmeans", 100, 10}, Case{"kmeans", 30, 30},
                      Case{"kmeans", 17, 3}, Case{"random", 64, 4}, Case{"random", 100, 10},
                      Case{"random", 5, 5}, Case{"grid", 64, 4}, Case{"grid", 100, 9},
                      Case{"grid", 40, 7}),
    [](const auto& info) {
      return info.param.clusterer + "_n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Clusterer, RejectsBadK) {
  const auto nodes = generate_topology(10, 2, 1);
  EXPECT_THROW(KMeansClusterer().cluster(nodes, 0), std::invalid_argument);
  EXPECT_THROW(RandomClusterer().cluster(nodes, 11), std::invalid_argument);
}

TEST(Clusterer, RandomSizesDifferByAtMostOne) {
  const auto nodes = generate_topology(103, 5, 7);
  const Clustering c = RandomClusterer(3).cluster(nodes, 10);
  EXPECT_LE(c.largest() - c.smallest(), 1u);
}

TEST(Clusterer, KMeansBalancedAvoidsTinyClusters) {
  const auto nodes = generate_topology(128, 4, 11);
  const Clustering c = KMeansClusterer(1, /*balance_sizes=*/true).cluster(nodes, 8);
  // Balancing guarantees every cluster has at least floor(target/2) members.
  EXPECT_GE(c.smallest(), 8u);
}

TEST(Clusterer, KMeansBeatsRandomOnIntraClusterDistance) {
  const auto nodes = generate_topology(200, 6, 13);
  const double km = mean_intra_cluster_distance(nodes, KMeansClusterer(1).cluster(nodes, 8));
  const double rnd = mean_intra_cluster_distance(nodes, RandomClusterer(1).cluster(nodes, 8));
  EXPECT_LT(km, rnd * 0.8) << "k-means should substantially tighten clusters";
}

TEST(Clusterer, MembersAreSorted) {
  const auto nodes = generate_topology(50, 3, 17);
  for (const auto& members : KMeansClusterer(1).cluster(nodes, 5).clusters) {
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  }
}

TEST(Clusterer, NamesAreStable) {
  EXPECT_EQ(KMeansClusterer().name(), "kmeans");
  EXPECT_EQ(RandomClusterer().name(), "random");
  EXPECT_EQ(GridClusterer().name(), "grid");
}

TEST(Topology, GeneratorIsDeterministicAndInBounds) {
  const auto a = generate_topology(64, 5, 99);
  const auto b = generate_topology(64, 5, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].coord.x, b[i].coord.x);
    EXPECT_GE(a[i].coord.x, 0.0);
    EXPECT_LE(a[i].coord.x, 100.0);
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].capacity, 1.0);
  }
}

TEST(Topology, HeterogeneousCapacityVaries) {
  const auto nodes = generate_topology(100, 5, 21, 100.0, /*heterogeneous=*/true);
  double mn = 100, mx = 0;
  for (const auto& n : nodes) {
    mn = std::min(mn, n.capacity);
    mx = std::max(mx, n.capacity);
    EXPECT_GE(n.capacity, 0.25);
    EXPECT_LE(n.capacity, 4.0);
  }
  EXPECT_LT(mn, mx);
}

TEST(Clustering, SmallestLargestOnEmpty) {
  Clustering c;
  EXPECT_EQ(c.smallest(), 0u);
  EXPECT_EQ(c.largest(), 0u);
}

}  // namespace
}  // namespace ici::cluster
