#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hex.h"

namespace ici {
namespace {

std::string digest_hex(const Digest256& d) { return to_hex(ByteSpan(d.data(), d.size())); }

ByteSpan as_span(const std::string& s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(as_span("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(Sha256::hash(as_span("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_span(chunk));
  EXPECT_EQ(digest_hex(h.final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: exercises the padding-into-second-block path.
  const std::string msg(64, 'x');
  Sha256 incremental;
  incremental.update(as_span(msg));
  EXPECT_EQ(digest_hex(incremental.final()), digest_hex(Sha256::hash(as_span(msg))));
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes fits length in the same block; 56 forces an extra block.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string msg(len, 'q');
    EXPECT_EQ(digest_hex(Sha256::hash(as_span(msg))).size(), 64u) << len;
  }
}

TEST(Sha256, IncrementalMatchesOneShotAtAllSplitPoints) {
  const std::string msg = "the quick brown fox jumps over the lazy dog repeatedly and often";
  const Digest256 expected = Sha256::hash(as_span(msg));
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(as_span(msg.substr(0, split)));
    h.update(as_span(msg.substr(split)));
    EXPECT_EQ(h.final(), expected) << "split at " << split;
  }
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const auto single = Sha256::hash(as_span("abc"));
  const auto twice = Sha256::hash2(as_span("abc"));
  EXPECT_NE(single, twice);
  // hash2 == hash(hash(x))
  EXPECT_EQ(twice, Sha256::hash(ByteSpan(single.data(), single.size())));
}

TEST(Sha256, UpdateAfterFinalThrows) {
  Sha256 h;
  (void)h.final();
  EXPECT_THROW(h.update(as_span("x")), std::logic_error);
}

TEST(Sha256, DoubleFinalThrows) {
  Sha256 h;
  (void)h.final();
  EXPECT_THROW((void)h.final(), std::logic_error);
}

}  // namespace
}  // namespace ici
