#include "baseline/rapidchain.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "chain/workload.h"
#include "storage/storage_meter.h"

namespace ici::baseline {
namespace {

Chain make_chain(std::size_t blocks = 12) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 6;
  return ChainGenerator(cfg).generate();
}

RapidChainConfig make_config(std::size_t nodes = 20, std::size_t committees = 4) {
  RapidChainConfig cfg;
  cfg.node_count = nodes;
  cfg.committee_count = committees;
  return cfg;
}

TEST(RapidChain, CommitteesPartitionNodes) {
  RapidChainNetwork net(make_config());
  std::unordered_set<sim::NodeId> seen;
  std::size_t total = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& members = net.committee_members(c);
    EXPECT_FALSE(members.empty());
    for (sim::NodeId id : members) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_EQ(net.node(id).committee(), c);
      ++total;
    }
  }
  EXPECT_EQ(total, 20u);
}

TEST(RapidChain, RejectsBadCommitteeCount) {
  EXPECT_THROW(RapidChainNetwork net(make_config(4, 0)), std::invalid_argument);
  EXPECT_THROW(RapidChainNetwork net(make_config(4, 5)), std::invalid_argument);
}

TEST(RapidChain, DisseminationReachesWholeCommittee) {
  const Chain chain = make_chain(1);
  RapidChainNetwork net(make_config());
  net.init_with_genesis(chain.at_height(0));
  const sim::SimTime latency = net.disseminate_and_settle(chain.at_height(1));
  EXPECT_GT(latency, 0u);

  const Hash256 hash = chain.at_height(1).hash();
  const std::size_t c = net.committee_of_block(hash);
  for (sim::NodeId id : net.committee_members(c)) {
    EXPECT_TRUE(net.node(id).store().has_block(hash)) << "member " << id;
  }
  // Other committees never see the body.
  for (std::size_t other = 0; other < 4; ++other) {
    if (other == c) continue;
    for (sim::NodeId id : net.committee_members(other)) {
      EXPECT_FALSE(net.node(id).store().has_block(hash));
    }
  }
}

TEST(RapidChain, IdaGossipCostsAboutGossipDegreeBlocksPerMember) {
  // Use a realistically sized block so chunk payloads dominate the
  // per-message framing (tiny chunks would make overhead the whole story).
  ChainGenConfig ccfg;
  ccfg.blocks = 1;
  ccfg.txs_per_block = 80;
  const Chain chain = ChainGenerator(ccfg).generate();

  RapidChainNetwork net(make_config(32, 2));
  net.init_with_genesis(chain.at_height(0));
  net.network().reset_traffic();
  ASSERT_GT(net.disseminate_and_settle(chain.at_height(1)), 0u);

  const std::size_t c = net.committee_of_block(chain.at_height(1).hash());
  const double m = static_cast<double>(net.committee_members(c).size());
  const double d = static_cast<double>(net.gossip_degree());
  const double copies = static_cast<double>(net.network().total_traffic().bytes_sent) /
                        static_cast<double>(chain.at_height(1).serialized_size());
  // Flooding with dedup: every member relays each fresh chunk to d ring
  // successors → ≈ d·m block-equivalents plus framing.
  EXPECT_GT(copies, m * 0.5);
  EXPECT_LT(copies, m * (d + 2.0));
}

TEST(RapidChain, PreloadStoresShardsOnly) {
  const Chain chain = make_chain(16);
  RapidChainNetwork net(make_config(20, 4));
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain);

  // Every block on every member of exactly its own committee.
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    const Hash256 hash = chain.at_height(h).hash();
    const std::size_t c = net.committee_of_block(hash);
    for (sim::NodeId id : net.committee_members(c)) {
      EXPECT_TRUE(net.node(id).store().has_block(hash));
    }
  }
  // Per-node storage ≈ D/k, far below the ledger.
  const StorageSnapshot snap = StorageMeter::snapshot(net.stores());
  EXPECT_LT(snap.mean_bytes, static_cast<double>(chain.total_bytes()) * 0.6);
  EXPECT_GT(snap.mean_bytes, 0.0);
}

TEST(RapidChain, BootstrapDownloadsOneShard) {
  const Chain chain = make_chain(20);
  RapidChainNetwork net(make_config(20, 4));
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain);

  const auto report = net.bootstrap({50, 50});
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.bodies_fetched, 0u);
  EXPECT_LT(report.bytes_downloaded, chain.total_bytes());
  // The joiner holds its committee's shard.
  const auto& joiner = net.node(static_cast<sim::NodeId>(net.node_count() - 1));
  EXPECT_EQ(joiner.store().block_count(), report.bodies_fetched);
}

TEST(RapidChain, BlockCommitteeAssignmentIsDeterministicAndSpread) {
  RapidChainNetwork net(make_config(40, 8));
  std::unordered_set<std::size_t> used;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ByteWriter w;
    w.u64(i);
    const Hash256 h = Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
    const std::size_t c = net.committee_of_block(h);
    EXPECT_EQ(c, net.committee_of_block(h));
    EXPECT_LT(c, 8u);
    used.insert(c);
  }
  EXPECT_EQ(used.size(), 8u);  // all committees get blocks
}

}  // namespace
}  // namespace ici::baseline
