#include "crypto/merkle.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

Hash256 leaf(std::uint64_t i) {
  ByteWriter w;
  w.u64(i);
  return Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
}

std::vector<Hash256> leaves(std::size_t n) {
  std::vector<Hash256> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(leaf(i));
  return out;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree t({});
  EXPECT_TRUE(t.root().is_zero());
  EXPECT_EQ(MerkleTree::compute_root({}), Hash256{});
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const Hash256 l = leaf(0);
  MerkleTree t({l});
  EXPECT_EQ(t.root(), l);
}

TEST(Merkle, TwoLeavesRootIsParent) {
  const Hash256 a = leaf(0), b = leaf(1);
  MerkleTree t({a, b});
  EXPECT_EQ(t.root(), merkle_parent(a, b));
}

TEST(Merkle, OddLevelDuplicatesLast) {
  const Hash256 a = leaf(0), b = leaf(1), c = leaf(2);
  MerkleTree t({a, b, c});
  const Hash256 expected = merkle_parent(merkle_parent(a, b), merkle_parent(c, c));
  EXPECT_EQ(t.root(), expected);
}

TEST(Merkle, ParentIsOrderSensitive) {
  const Hash256 a = leaf(0), b = leaf(1);
  EXPECT_NE(merkle_parent(a, b), merkle_parent(b, a));
}

TEST(Merkle, ComputeRootMatchesTree) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 33u}) {
    const auto ls = leaves(n);
    MerkleTree t(ls);
    EXPECT_EQ(MerkleTree::compute_root(ls), t.root()) << "n=" << n;
  }
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree t(leaves(4));
  EXPECT_THROW((void)t.prove(4), std::out_of_range);
}

class MerkleProofAllSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofAllSizes, EveryLeafVerifies) {
  const std::size_t n = GetParam();
  const auto ls = leaves(n);
  MerkleTree t(ls);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = t.prove(i);
    EXPECT_TRUE(MerkleTree::verify(ls[i], i, proof, t.root())) << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofAllSizes, WrongLeafFails) {
  const std::size_t n = GetParam();
  const auto ls = leaves(n);
  MerkleTree t(ls);
  const MerkleProof proof = t.prove(0);
  EXPECT_FALSE(MerkleTree::verify(leaf(999), 0, proof, t.root()));
}

TEST_P(MerkleProofAllSizes, WrongRootFails) {
  const std::size_t n = GetParam();
  const auto ls = leaves(n);
  MerkleTree t(ls);
  EXPECT_FALSE(MerkleTree::verify(ls[0], 0, t.prove(0), leaf(12345)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofAllSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64, 100));

TEST(Merkle, TamperedProofStepFails) {
  const auto ls = leaves(8);
  MerkleTree t(ls);
  MerkleProof proof = t.prove(3);
  proof[1].sibling = leaf(777);
  EXPECT_FALSE(MerkleTree::verify(ls[3], 3, proof, t.root()));
}

TEST(Merkle, FlippedSideFails) {
  const auto ls = leaves(8);
  MerkleTree t(ls);
  MerkleProof proof = t.prove(3);
  proof[0].sibling_is_right = !proof[0].sibling_is_right;
  EXPECT_FALSE(MerkleTree::verify(ls[3], 3, proof, t.root()));
}

TEST(Merkle, ProofDepthIsLogarithmic) {
  MerkleTree t(leaves(64));
  EXPECT_EQ(t.prove(0).size(), 6u);  // log2(64)
  MerkleTree t100(leaves(100));
  EXPECT_EQ(t100.prove(0).size(), 7u);  // ceil(log2(100))
}

}  // namespace
}  // namespace ici
