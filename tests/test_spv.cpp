#include "spv/proof.h"

#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::spv {
namespace {

Chain make_chain(std::size_t blocks = 6) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 9;
  return ChainGenerator(cfg).generate();
}

TEST(Proof, BuildAndVerifyEveryTx) {
  const Chain chain = make_chain();
  const Block& block = chain.at_height(3);
  for (const Transaction& tx : block.txs()) {
    const auto proof = build_proof(block, tx.txid());
    ASSERT_TRUE(proof.has_value());
    EXPECT_EQ(proof->txid, tx.txid());
    EXPECT_EQ(proof->height, 3u);
    EXPECT_TRUE(verify_proof(*proof, block.header()));
  }
}

TEST(Proof, UnknownTxidYieldsNoProof) {
  const Chain chain = make_chain();
  EXPECT_FALSE(build_proof(chain.at_height(1), Hash256::of({})).has_value());
}

TEST(Proof, WrongHeaderFails) {
  const Chain chain = make_chain();
  const Block& block = chain.at_height(2);
  const auto proof = build_proof(block, block.txs()[1].txid());
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(verify_proof(*proof, chain.at_height(3).header()));
}

TEST(Proof, TamperedFieldsFail) {
  const Chain chain = make_chain();
  const Block& block = chain.at_height(2);
  auto proof = build_proof(block, block.txs()[1].txid());
  ASSERT_TRUE(proof.has_value());

  auto tampered = *proof;
  tampered.tx_index += 1;
  EXPECT_FALSE(verify_proof(tampered, block.header()));

  tampered = *proof;
  tampered.txid = Hash256::of({});
  EXPECT_FALSE(verify_proof(tampered, block.header()));

  tampered = *proof;
  if (!tampered.path.empty()) {
    tampered.path[0].sibling = Hash256::of({});
    EXPECT_FALSE(verify_proof(tampered, block.header()));
  }
}

TEST(LightClient, FollowsValidChain) {
  const Chain chain = make_chain();
  LightClient client(chain.at_height(0).header());
  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    EXPECT_TRUE(client.add_header(chain.at_height(h).header())) << h;
  }
  EXPECT_EQ(client.tip_height(), chain.height());
  EXPECT_EQ(client.header_at(2)->hash(), chain.at_height(2).hash());
  EXPECT_EQ(client.header_at(99), nullptr);
}

TEST(LightClient, RejectsBrokenLinkage) {
  const Chain chain = make_chain();
  LightClient client(chain.at_height(0).header());
  EXPECT_FALSE(client.add_header(chain.at_height(2).header()));  // skipped 1
  BlockHeader wrong = chain.at_height(1).header();
  wrong.parent = Hash256::of({});
  EXPECT_FALSE(client.add_header(wrong));
  EXPECT_TRUE(client.add_header(chain.at_height(1).header()));
}

TEST(LightClient, SyncBulkAndValidateProof) {
  const Chain chain = make_chain();
  LightClient client(chain.at_height(0).header());
  std::vector<BlockHeader> headers;
  for (const Block& b : chain.blocks()) headers.push_back(b.header());
  EXPECT_EQ(client.sync(headers), chain.height());

  const Block& block = chain.at_height(4);
  const auto proof = build_proof(block, block.txs()[2].txid());
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(client.validate(*proof));

  // A proof claiming the wrong height fails even if internally consistent.
  auto moved = *proof;
  moved.height = 3;
  EXPECT_FALSE(client.validate(moved));
}

// -- network-served proofs ---------------------------------------------------

struct NetRig {
  explicit NetRig(bool coded) {
    chain = std::make_unique<Chain>(make_chain(8));
    core::IciNetworkConfig cfg;
    cfg.node_count = 20;
    cfg.ici.cluster_count = 2;
    if (coded) {
      cfg.ici.erasure_data = 4;
      cfg.ici.erasure_parity = 2;
    }
    net = std::make_unique<core::IciNetwork>(cfg);
    net->init_with_genesis(chain->at_height(0));
    net->preload_chain(*chain);
  }
  std::unique_ptr<Chain> chain;
  std::unique_ptr<core::IciNetwork> net;
};

TEST(SpvNetwork, FetchProofFromClusterReplicated) {
  NetRig rig(false);
  const Block& block = rig.chain->at_height(5);
  const Hash256 txid = block.txs()[1].txid();

  // A node without the body must fetch the proof from a holder.
  cluster::NodeId requester = cluster::kNoNode;
  for (std::size_t id = 0; id < rig.net->node_count(); ++id) {
    if (!rig.net->node(static_cast<cluster::NodeId>(id)).store().has_block(block.hash())) {
      requester = static_cast<cluster::NodeId>(id);
      break;
    }
  }
  ASSERT_NE(requester, cluster::kNoNode);

  bool got = false;
  rig.net->node(requester).fetch_proof(
      txid, block.hash(), 5,
      [&](std::optional<TxInclusionProof> proof, sim::SimTime elapsed) {
        ASSERT_TRUE(proof.has_value());
        EXPECT_TRUE(verify_proof(*proof, block.header()));
        EXPECT_GT(elapsed, 0u);
        got = true;
      });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(SpvNetwork, FetchProofCodedModeReconstructs) {
  NetRig rig(true);
  const Block& block = rig.chain->at_height(5);
  const Hash256 txid = block.txs()[1].txid();

  bool got = false;
  rig.net->node(0).fetch_proof(txid, block.hash(), 5,
                               [&](std::optional<TxInclusionProof> proof, sim::SimTime) {
                                 ASSERT_TRUE(proof.has_value());
                                 EXPECT_TRUE(verify_proof(*proof, block.header()));
                                 got = true;
                               });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(SpvNetwork, UnknownTxYieldsMiss) {
  NetRig rig(false);
  const Block& block = rig.chain->at_height(5);
  bool called = false;
  rig.net->node(0).fetch_proof(Hash256::of({}), block.hash(), 5,
                               [&](std::optional<TxInclusionProof> proof, sim::SimTime) {
                                 called = true;
                                 EXPECT_FALSE(proof.has_value());
                               });
  rig.net->settle();
  EXPECT_TRUE(called);
  EXPECT_GT(rig.net->metrics().counter_value("spv.misses"), 0u);
}

}  // namespace
}  // namespace ici::spv
