#include "crypto/sig.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

ByteSpan msg(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

TEST(Sig, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::from_seed(1);
  const Bytes m = {1, 2, 3};
  const Signature s = sign(kp, msg(m));
  EXPECT_TRUE(verify(kp.pub, msg(m), s));
}

TEST(Sig, WrongMessageFails) {
  const KeyPair kp = KeyPair::from_seed(2);
  const Bytes m1 = {1}, m2 = {2};
  const Signature s = sign(kp, msg(m1));
  EXPECT_FALSE(verify(kp.pub, msg(m2), s));
}

TEST(Sig, WrongKeyFails) {
  const KeyPair kp1 = KeyPair::from_seed(3);
  const KeyPair kp2 = KeyPair::from_seed(4);
  const Bytes m = {9};
  const Signature s = sign(kp1, msg(m));
  EXPECT_FALSE(verify(kp2.pub, msg(m), s));
}

TEST(Sig, TamperedSignatureFails) {
  const KeyPair kp = KeyPair::from_seed(5);
  const Bytes m = {7};
  Signature s = sign(kp, msg(m));
  s[0] ^= 0x01;
  EXPECT_FALSE(verify(kp.pub, msg(m), s));
  s[0] ^= 0x01;
  s[63] ^= 0x80;
  EXPECT_FALSE(verify(kp.pub, msg(m), s));
}

TEST(Sig, DeterministicKeysFromSeed) {
  EXPECT_EQ(KeyPair::from_seed(42).pub, KeyPair::from_seed(42).pub);
  EXPECT_NE(KeyPair::from_seed(42).pub, KeyPair::from_seed(43).pub);
}

TEST(Sig, SignatureIsDeterministic) {
  const KeyPair kp = KeyPair::from_seed(6);
  const Bytes m = {1, 1, 1};
  EXPECT_EQ(sign(kp, msg(m)), sign(kp, msg(m)));
}

TEST(Sig, EmptyMessageWorks) {
  const KeyPair kp = KeyPair::from_seed(7);
  const Signature s = sign(kp, {});
  EXPECT_TRUE(verify(kp.pub, {}, s));
}

TEST(Sig, KeyIdIsStableAndShort) {
  const KeyPair kp = KeyPair::from_seed(8);
  EXPECT_EQ(key_id(kp.pub), key_id(kp.pub));
  EXPECT_EQ(key_id(kp.pub).size(), 8u);
}

}  // namespace
}  // namespace ici
