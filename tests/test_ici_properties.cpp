// Property sweeps: the protocol's core invariants must hold across the
// whole configuration grid, not just hand-picked settings.
//
// Invariants checked after disseminating a few blocks under (N, k, r) /
// (N, k, d, p) combinations:
//  P1  every cluster commits every block;
//  P2  intra-cluster integrity — every cluster can produce every block;
//  P3  per-cluster copy count equals r (replication) / d+p shards (coded);
//  P4  all nodes hold all headers;
//  P5  total traffic is byte-positive and bounded by a loose cap;
//  P6  the same seed reproduces the exact same storage layout.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct GridCase {
  std::size_t nodes;
  std::size_t clusters;
  std::size_t replication;  // used when erasure_data == 0
  std::size_t erasure_data;
  std::size_t erasure_parity;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  std::string name = "n" + std::to_string(c.nodes) + "_k" + std::to_string(c.clusters);
  if (c.erasure_data > 0) {
    name += "_rs" + std::to_string(c.erasure_data) + "x" + std::to_string(c.erasure_parity);
  } else {
    name += "_r" + std::to_string(c.replication);
  }
  return name;
}

class ProtocolGrid : public ::testing::TestWithParam<GridCase> {
 protected:
  struct Run {
    std::unique_ptr<IciNetwork> net;
    std::unique_ptr<Chain> chain;
  };

  Run run_case(const GridCase& c, int blocks) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 8;
    ChainGenerator gen(ccfg);

    IciNetworkConfig ncfg;
    ncfg.node_count = c.nodes;
    ncfg.ici.cluster_count = c.clusters;
    ncfg.ici.replication = c.replication;
    ncfg.ici.erasure_data = c.erasure_data;
    ncfg.ici.erasure_parity = c.erasure_parity;

    Run run;
    run.net = std::make_unique<IciNetwork>(ncfg);
    Block genesis = gen.workload().make_genesis();
    gen.workload().confirm(genesis);
    run.chain = std::make_unique<Chain>(genesis);
    run.net->init_with_genesis(genesis);
    for (int i = 0; i < blocks; ++i) {
      run.chain->append(gen.next_block(*run.chain));
      EXPECT_GT(run.net->disseminate_and_settle(run.chain->tip()), 0u)
          << "P1 violated at height " << run.chain->height();
    }
    return run;
  }
};

TEST_P(ProtocolGrid, InvariantsHold) {
  const GridCase c = GetParam();
  constexpr int kBlocks = 3;
  Run run = run_case(c, kBlocks);
  auto& net = *run.net;
  auto& chain = *run.chain;
  auto& dir = net.directory();

  // P1 already checked in run_case; commit count is k per block.
  EXPECT_EQ(net.metrics().counter_value("commit.count"),
            static_cast<std::uint64_t>(kBlocks) * c.clusters);

  for (std::uint64_t h = 1; h <= chain.height(); ++h) {
    const Hash256 hash = chain.at_height(h).hash();
    for (std::size_t cl = 0; cl < dir.cluster_count(); ++cl) {
      if (c.erasure_data > 0) {
        // P2/P3 coded: min(d+p, m) distinct shards (a small cluster drops
        // parity, never data), always enough to decode.
        std::size_t shards = 0;
        for (auto id : dir.members(cl)) {
          shards += net.node(id).shards().indices(hash).size();
        }
        EXPECT_EQ(shards,
                  std::min(c.erasure_data + c.erasure_parity, dir.members(cl).size()))
            << "height " << h << " cluster " << cl;
        EXPECT_GE(shards, c.erasure_data) << "undecodable: cluster smaller than d";
      } else {
        // P3: exactly min(r, m) holders.
        std::size_t holders = 0;
        for (auto id : dir.members(cl)) {
          if (net.node(id).store().has_block(hash)) ++holders;
        }
        EXPECT_EQ(holders, std::min(c.replication, dir.members(cl).size()))
            << "height " << h << " cluster " << cl;
      }
    }
  }

  // P4: all headers everywhere.
  for (std::size_t id = 0; id < net.node_count(); ++id) {
    EXPECT_EQ(net.node(static_cast<cluster::NodeId>(id)).store().header_count(),
              chain.size());
  }

  // P5: sane traffic: at least one body per cluster entered the network;
  // at most a gossip-storm's worth.
  const auto traffic = net.network().total_traffic();
  const double body = static_cast<double>(chain.tip().serialized_size());
  EXPECT_GT(static_cast<double>(traffic.bytes_sent), body * static_cast<double>(c.clusters));
  EXPECT_LT(static_cast<double>(traffic.bytes_sent),
            body * static_cast<double>(c.nodes) * kBlocks * 4);
  EXPECT_EQ(traffic.msgs_sent >= traffic.msgs_received, true);  // drops only
}

TEST_P(ProtocolGrid, DeterministicLayoutForSameSeed) {
  const GridCase c = GetParam();
  Run a = run_case(c, 2);
  Run b = run_case(c, 2);
  ASSERT_EQ(a.chain->tip().hash(), b.chain->tip().hash());
  for (std::size_t id = 0; id < a.net->node_count(); ++id) {
    const auto& na = a.net->node(static_cast<cluster::NodeId>(id));
    const auto& nb = b.net->node(static_cast<cluster::NodeId>(id));
    EXPECT_EQ(na.store().block_count(), nb.store().block_count()) << id;
    EXPECT_EQ(na.storage_bytes(), nb.storage_bytes()) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolGrid,
    ::testing::Values(GridCase{12, 1, 1, 0, 0}, GridCase{16, 2, 1, 0, 0},
                      GridCase{16, 2, 2, 0, 0}, GridCase{24, 3, 1, 0, 0},
                      GridCase{24, 2, 3, 0, 0}, GridCase{30, 5, 2, 0, 0},
                      GridCase{40, 4, 1, 0, 0}, GridCase{16, 2, 1, 2, 1},
                      GridCase{24, 2, 1, 4, 2}, GridCase{30, 3, 1, 3, 2},
                      GridCase{40, 2, 1, 8, 4}),
    case_name);

}  // namespace
}  // namespace ici::core
