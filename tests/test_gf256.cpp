#include "erasure/gf256.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ici::erasure {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::add(7, 7), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, KnownProduct) {
  // 0x53 * 0xca = 0x01 in GF(2^8) with 0x11d... verify via inverse instead:
  // known AES-poly examples don't apply; check multiplicative inverse law.
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256, MulCommutativeAssociative) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, Distributive) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, DivInvertsMul) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.range(1, 255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(GF256, DivByZeroThrows) {
  EXPECT_THROW((void)GF256::div(1, 0), std::domain_error);
  EXPECT_THROW((void)GF256::inv(0), std::domain_error);
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (std::uint8_t a : {2, 3, 7, 0x1d, 0xff}) {
    std::uint8_t acc = 1;
    for (std::uint32_t n = 0; n < 20; ++n) {
      EXPECT_EQ(GF256::pow(a, n), acc) << static_cast<int>(a) << "^" << n;
      acc = GF256::mul(acc, a);
    }
  }
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(0, 5), 0);
}

TEST(GF256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: exp(n) cycles through all 255
  // non-zero elements.
  std::vector<bool> seen(256, false);
  for (std::uint32_t n = 0; n < 255; ++n) {
    const std::uint8_t v = GF256::exp(n);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at n=" << n;
    seen[v] = true;
  }
}

TEST(GF256, MulAddRow) {
  Bytes dst = {1, 2, 3, 4};
  const Bytes src = {5, 6, 7, 8};
  GF256::mul_add_row(dst.data(), src.data(), 4, 0);
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));  // c=0 is a no-op
  GF256::mul_add_row(dst.data(), src.data(), 4, 1);
  EXPECT_EQ(dst, (Bytes{1 ^ 5, 2 ^ 6, 3 ^ 7, 4 ^ 8}));  // c=1 is XOR

  Bytes dst2 = {0, 0};
  const Bytes src2 = {9, 17};
  GF256::mul_add_row(dst2.data(), src2.data(), 2, 3);
  EXPECT_EQ(dst2[0], GF256::mul(9, 3));
  EXPECT_EQ(dst2[1], GF256::mul(17, 3));
}

}  // namespace
}  // namespace ici::erasure
