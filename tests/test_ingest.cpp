// The ingest determinism contract (docs/INGEST.md): the admission pipeline
// — TrafficGenerator arrivals through TxAcceptor batching/dedup/prescreen
// into the fee-prioritized mempool and out through block templates — must
// produce bit-identical ingest.*/mempool.* tallies AND an identical
// accepted-tx order at any worker-pool width (--threads 1/2/8) and any
// event-shard count (--shards 1/2/8), for every strategy in the registry,
// with and without a message-fault plan installed (the test_ingest_faults
// CTest variant sets ICI_FAULT_PLAN).
//
// Also pins the duplicate-confirmation guard: a txid confirmed in an
// ancestor block can never re-enter a later template, even when it is
// re-admitted to the pool directly (the acceptor's stateful prescreen
// blocks the ordinary resubmission path upstream).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/utxo.h"
#include "chain/workload.h"
#include "common/thread_pool.h"
#include "ingest/driver.h"
#include "sim/faults.h"
#include "sim/shard.h"
#include "strategy/strategy.h"

namespace ici {
namespace {

constexpr std::size_t kWidths[] = {1, 2, 8};

class IngestDeterminism : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::set_global_threads(4); }
  void TearDown() override {
    ThreadPool::set_global_threads(1);
    sim::set_default_shards(1);
  }
};

void install_env_fault_plan(const std::function<void(const sim::FaultPlan&)>& start) {
  // Message-fault plans only (drop/dup/delay): random crash schedules never
  // quiesce, so a settle-based run cannot carry them through the env.
  if (const char* spec = std::getenv("ICI_FAULT_PLAN");
      spec != nullptr && *spec != '\0') {
    sim::FaultPlan plan;
    std::string error;
    if (!sim::FaultPlan::parse(spec, &plan, &error)) {
      ADD_FAILURE() << "bad ICI_FAULT_PLAN: " << error;
    } else if (plan.enabled()) {
      start(plan);
    }
  }
}

ingest::DriverConfig pipeline_driver_config() {
  ingest::DriverConfig dcfg;
  dcfg.block_interval_us = 200'000;
  dcfg.blocks = 4;
  dcfg.max_block_txs = 120;
  dcfg.mempool.capacity = 256;
  dcfg.acceptor.queue_capacity = 64;  // small: overload must hit backpressure
  dcfg.acceptor.batch_budget = 64;
  dcfg.acceptor.batch_interval_us = 50'000;
  dcfg.acceptor.min_fee = 1;
  dcfg.capture_accepted_order = true;
  dcfg.after_init = [](core::Strategy& s) {
    install_env_fault_plan([&s](const sim::FaultPlan& p) { s.start_faults(p); });
  };
  return dcfg;
}

TrafficConfig pipeline_traffic_config() {
  TrafficConfig tcfg;
  tcfg.user_count = 500;
  tcfg.outputs_per_user = 4;
  tcfg.tx_rate_tps = 1500;  // ~2.5x the 120-tx/200ms block budget
  tcfg.seed = 42;
  return tcfg;
}

ingest::DriverReport run_pipeline(std::string_view strategy_name, std::size_t threads,
                                  std::size_t shards,
                                  ingest::DriverConfig dcfg = pipeline_driver_config()) {
  ThreadPool::set_global_threads(threads);
  sim::set_default_shards(shards);
  core::StrategyConfig scfg;
  scfg.node_count = 16;
  scfg.groups = 2;
  scfg.pruned_window = 8;
  scfg.fullrep_validate = false;
  const auto strat = core::make_strategy(strategy_name, scfg);
  ingest::IngestDriver driver(dcfg, pipeline_traffic_config());
  return driver.run(*strat);
}

void expect_identical(const ingest::DriverReport& a, const ingest::DriverReport& b,
                      std::string_view what) {
  const std::string ctx = std::string(what);
  EXPECT_EQ(a.ingest.submitted, b.ingest.submitted) << ctx;
  EXPECT_EQ(a.ingest.accepted, b.ingest.accepted) << ctx;
  EXPECT_EQ(a.ingest.deduped, b.ingest.deduped) << ctx;
  EXPECT_EQ(a.ingest.rejected_backpressure, b.ingest.rejected_backpressure) << ctx;
  EXPECT_EQ(a.ingest.prescreen_failed, b.ingest.prescreen_failed) << ctx;
  EXPECT_EQ(a.ingest.batches, b.ingest.batches) << ctx;
  EXPECT_EQ(a.ingest.batched_txs, b.ingest.batched_txs) << ctx;
  EXPECT_EQ(a.batch_occupancy_pct, b.batch_occupancy_pct) << ctx;
  EXPECT_EQ(a.mempool.accepted, b.mempool.accepted) << ctx;
  EXPECT_EQ(a.mempool.rejected_dup, b.mempool.rejected_dup) << ctx;
  EXPECT_EQ(a.mempool.rejected_conflict, b.mempool.rejected_conflict) << ctx;
  EXPECT_EQ(a.mempool.rejected_full, b.mempool.rejected_full) << ctx;
  EXPECT_EQ(a.mempool.evictions, b.mempool.evictions) << ctx;
  EXPECT_EQ(a.mempool.size_peak, b.mempool.size_peak) << ctx;
  EXPECT_EQ(a.blocks_proposed, b.blocks_proposed) << ctx;
  EXPECT_EQ(a.txs_confirmed, b.txs_confirmed) << ctx;
  EXPECT_EQ(a.template_skipped_confirmed, b.template_skipped_confirmed) << ctx;
  EXPECT_EQ(a.generated, b.generated) << ctx;
  EXPECT_EQ(a.skipped_no_funds, b.skipped_no_funds) << ctx;
  EXPECT_EQ(a.final_time_us, b.final_time_us) << ctx;
  EXPECT_EQ(a.submit_to_commit_us.count(), b.submit_to_commit_us.count()) << ctx;
  EXPECT_EQ(a.submit_to_commit_us.sum(), b.submit_to_commit_us.sum()) << ctx;
  EXPECT_EQ(a.submit_to_commit_us.p99(), b.submit_to_commit_us.p99()) << ctx;
  EXPECT_EQ(a.retry_after_us.count(), b.retry_after_us.count()) << ctx;
  EXPECT_EQ(a.retry_after_us.sum(), b.retry_after_us.sum()) << ctx;
  // The strongest check: every accepted txid, in admission order.
  EXPECT_EQ(a.accepted_order, b.accepted_order) << ctx;
}

TEST_F(IngestDeterminism, PipelineBitIdenticalAcrossThreadCounts) {
  for (const std::string_view name : core::strategy_names()) {
    const ingest::DriverReport base = run_pipeline(name, kWidths[0], 1);
    ASSERT_GT(base.ingest.accepted, 0u) << name;
    for (std::size_t i = 1; i < std::size(kWidths); ++i) {
      const ingest::DriverReport other = run_pipeline(name, kWidths[i], 1);
      expect_identical(base, other,
                       std::string(name) + " at " + std::to_string(kWidths[i]) +
                           " threads");
    }
  }
}

TEST_F(IngestDeterminism, PipelineBitIdenticalAcrossShardCounts) {
  for (const std::string_view name : core::strategy_names()) {
    const ingest::DriverReport base = run_pipeline(name, 4, kWidths[0]);
    ASSERT_GT(base.ingest.accepted, 0u) << name;
    for (std::size_t i = 1; i < std::size(kWidths); ++i) {
      const ingest::DriverReport other = run_pipeline(name, 4, kWidths[i]);
      expect_identical(base, other,
                       std::string(name) + " at " + std::to_string(kWidths[i]) +
                           " shards");
    }
  }
}

TEST_F(IngestDeterminism, OverloadExercisesBackpressureAndEviction) {
  // The determinism runs are only meaningful if the interesting counters
  // actually fire under this configuration.
  const ingest::DriverReport r = run_pipeline("ici", 4, 1);
  EXPECT_GT(r.ingest.rejected_backpressure, 0u);
  EXPECT_GT(r.mempool.evictions, 0u);
  EXPECT_GT(r.mempool.size_peak, 0u);
  EXPECT_GT(r.retry_after_us.count(), 0u);
  EXPECT_GT(r.txs_confirmed, 0u);
  EXPECT_GT(r.submit_to_commit_us.count(), 0u);
  EXPECT_GT(r.batch_occupancy_pct, 0u);
}

TEST_F(IngestDeterminism, SyncsCountersIntoStrategyRegistry) {
  ThreadPool::set_global_threads(2);
  core::StrategyConfig scfg;
  scfg.node_count = 16;
  scfg.groups = 2;
  const auto strat = core::make_strategy("ici", scfg);
  ingest::IngestDriver driver(pipeline_driver_config(), pipeline_traffic_config());
  const ingest::DriverReport r = driver.run(*strat);
  metrics::Registry* reg = strat->metrics_registry();
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->counter_value("ingest.submitted"), r.ingest.submitted);
  EXPECT_EQ(reg->counter_value("ingest.accepted"), r.ingest.accepted);
  EXPECT_EQ(reg->counter_value("ingest.rejected_backpressure"),
            r.ingest.rejected_backpressure);
  EXPECT_EQ(reg->counter_value("ingest.batches"), r.ingest.batches);
  EXPECT_EQ(reg->counter_value("ingest.confirmed"), r.txs_confirmed);
  EXPECT_EQ(reg->counter_value("mempool.evictions"), r.mempool.evictions);
  EXPECT_EQ(reg->counter_value("mempool.size_peak"), r.mempool.size_peak);
}

// --- duplicate-confirmation guard (double submission across heights) --------

TEST_F(IngestDeterminism, ConfirmedTxidNeverReentersALaterBlock) {
  ingest::DriverConfig dcfg = pipeline_driver_config();
  int injected = 0;
  dcfg.before_template = [&injected](std::uint64_t height, Mempool& pool,
                                     const Chain& chain) {
    if (height != 2) return;
    // Re-admit a tx confirmed at height 1 straight into the pool with the
    // best fee in the run — if the template guard is broken, it wins a slot.
    for (const Transaction& tx : chain.blocks()[1].txs()) {
      if (tx.is_coinbase()) continue;
      EXPECT_TRUE(pool.add(tx, 1'000'000));
      ++injected;
      break;
    }
  };
  const ingest::DriverReport r = run_pipeline("pruned", 2, 1, dcfg);
  ASSERT_EQ(injected, 1);
  EXPECT_EQ(r.template_skipped_confirmed, 1u);
}

// --- TxAcceptor unit behaviour ----------------------------------------------

struct AcceptorRig {
  explicit AcceptorRig(ingest::AcceptorConfig acfg) {
    TrafficConfig tcfg;
    tcfg.user_count = 64;
    tcfg.outputs_per_user = 2;
    tcfg.tx_rate_tps = 400;
    tcfg.seed = 7;
    gen = std::make_unique<TrafficGenerator>(tcfg);
    Block genesis = gen->make_genesis();
    gen->confirm(genesis);
    for (const Transaction& tx : genesis.txs()) utxo.apply_tx(tx, 0);
    acceptor = std::make_unique<ingest::TxAcceptor>(acfg, &pool, &utxo);
  }

  std::vector<TrafficArrival> arrivals(std::uint64_t to_us) {
    return gen->arrivals_until(to_us);
  }

  std::unique_ptr<TrafficGenerator> gen;
  UtxoSet utxo;
  Mempool pool;
  std::unique_ptr<ingest::TxAcceptor> acceptor;
};

TEST(TxAcceptor, DedupsRepeatSubmissionsInWindow) {
  ingest::AcceptorConfig acfg;
  acfg.min_fee = 1;
  AcceptorRig rig(acfg);
  const auto arr = rig.arrivals(100'000);
  ASSERT_FALSE(arr.empty());
  rig.acceptor->submit(arr[0].tx, arr[0].at_us);
  rig.acceptor->submit(arr[0].tx, arr[0].at_us);
  rig.acceptor->advance(200'000);
  EXPECT_EQ(rig.acceptor->counters().submitted, 2u);
  EXPECT_EQ(rig.acceptor->counters().accepted, 1u);
  EXPECT_EQ(rig.acceptor->counters().deduped, 1u);
  EXPECT_EQ(rig.pool.size(), 1u);
}

TEST(TxAcceptor, PrescreenRejectsUnknownInputs) {
  ingest::AcceptorConfig acfg;
  AcceptorRig rig(acfg);
  // A syntactically valid, correctly signed tx spending an outpoint that
  // does not exist in the UTXO view.
  const KeyPair owner = KeyPair::from_seed(999);
  const std::uint8_t salt[1] = {0xAB};
  Transaction ghost({TxInput{OutPoint{Hash256::of(ByteSpan(salt, 1)), 7}, {}, {}}},
                    {TxOutput{5, owner.pub}}, 1);
  ghost.sign_all_inputs(owner);
  std::vector<ingest::DropReason> drops;
  rig.acceptor->set_on_drop(
      [&drops](const Transaction&, ingest::DropReason r) { drops.push_back(r); });
  rig.acceptor->submit(ghost, 1);
  rig.acceptor->advance(100'000);
  EXPECT_EQ(rig.acceptor->counters().prescreen_failed, 1u);
  EXPECT_EQ(rig.acceptor->counters().accepted, 0u);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], ingest::DropReason::kPrescreen);
  EXPECT_TRUE(rig.pool.empty());
}

TEST(TxAcceptor, PrescreenEnforcesMinimumFee) {
  ingest::AcceptorConfig acfg;
  acfg.min_fee = 1'000'000;  // far above any generated fee
  AcceptorRig rig(acfg);
  const auto arr = rig.arrivals(100'000);
  ASSERT_FALSE(arr.empty());
  for (const TrafficArrival& a : arr) rig.acceptor->submit(a.tx, a.at_us);
  rig.acceptor->advance(200'000);
  EXPECT_EQ(rig.acceptor->counters().accepted, 0u);
  EXPECT_EQ(rig.acceptor->counters().prescreen_failed, rig.acceptor->counters().submitted);
}

TEST(TxAcceptor, FullQueueRejectsWithRetryAfterHint) {
  ingest::AcceptorConfig acfg;
  acfg.queue_capacity = 2;
  acfg.batch_interval_us = 50'000;
  AcceptorRig rig(acfg);
  const auto arr = rig.arrivals(100'000);
  ASSERT_GE(arr.size(), 5u);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    // All submitted at t=1, before the first batch tick can drain anything.
    if (rig.acceptor->submit(arr[i].tx, 1) == ingest::TxAcceptor::Submit::kRejected) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(rig.acceptor->counters().rejected_backpressure, 3u);
  ASSERT_EQ(rig.acceptor->retry_after_us().count(), 3u);
  // The hint is the distance to the next batch tick: 50'000 - 1.
  EXPECT_EQ(rig.acceptor->retry_after_us().min(), 49'999.0);
  EXPECT_EQ(rig.acceptor->retry_after_us().max(), 49'999.0);
}

TEST(TxAcceptor, ResubmitOfConfirmedTxFailsStatefulPrescreen) {
  ingest::AcceptorConfig acfg;
  acfg.dedup_window = 1;  // let the resubmission past the dedup window
  acfg.min_fee = 1;
  AcceptorRig rig(acfg);
  const auto arr = rig.arrivals(100'000);
  ASSERT_GE(arr.size(), 2u);
  const Transaction first = arr[0].tx;
  rig.acceptor->submit(first, arr[0].at_us);
  rig.acceptor->advance(150'000);
  ASSERT_EQ(rig.acceptor->counters().accepted, 1u);

  // "Confirm" it: spend its inputs in the UTXO view and clear the pool,
  // exactly what the driver does when a block commits.
  rig.utxo.apply_tx(first, 1);
  rig.pool.remove_confirmed({first});

  // Push the txid out of the one-entry dedup window, then resubmit.
  rig.acceptor->submit(arr[1].tx, 160'000);
  rig.acceptor->advance(250'000);
  rig.acceptor->submit(first, 260'000);
  rig.acceptor->advance(350'000);
  EXPECT_EQ(rig.acceptor->counters().prescreen_failed, 1u);
  EXPECT_FALSE(rig.pool.contains(first.txid()));
}

}  // namespace
}  // namespace ici
