#include "chain/mempool.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

Transaction make_tx(std::uint64_t input_salt, std::uint64_t nonce) {
  const KeyPair owner = KeyPair::from_seed(input_salt);
  ByteWriter w;
  w.u64(input_salt);
  Transaction tx({TxInput{OutPoint{Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size())), 0},
                          {},
                          {}}},
                 {TxOutput{10, owner.pub}}, nonce);
  tx.sign_all_inputs(owner);
  return tx;
}

TEST(Mempool, AddAndContains) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.add(tx));
  EXPECT_TRUE(pool.contains(tx.txid()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RejectsDuplicateTxid) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.add(tx));
  EXPECT_FALSE(pool.add(tx));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RejectsConflictingSpend) {
  Mempool pool;
  EXPECT_TRUE(pool.add(make_tx(1, 1)));
  // Same input (salt 1), different nonce → different txid, same outpoint.
  EXPECT_FALSE(pool.add(make_tx(1, 2)));
}

TEST(Mempool, TakeReturnsArrivalOrder) {
  Mempool pool;
  const Transaction a = make_tx(1, 1);
  const Transaction b = make_tx(2, 1);
  const Transaction c = make_tx(3, 1);
  pool.add(a);
  pool.add(b);
  pool.add(c);
  const auto taken = pool.take(2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].txid(), a.txid());
  EXPECT_EQ(taken[1].txid(), b.txid());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, TakeMoreThanAvailable) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  EXPECT_EQ(pool.take(10).size(), 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, TakenInputsBecomeSpendableAgain) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  (void)pool.take(1);
  // Once removed from the pool, a conflicting spend is admissible again.
  EXPECT_TRUE(pool.add(make_tx(1, 2)));
}

TEST(Mempool, RemoveConfirmedDropsTx) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  pool.add(tx);
  pool.remove_confirmed({tx});
  EXPECT_FALSE(pool.contains(tx.txid()));
  EXPECT_TRUE(pool.take(10).empty());
}

TEST(Mempool, RemoveConfirmedEvictsConflicts) {
  Mempool pool;
  const Transaction pooled = make_tx(1, 1);
  pool.add(pooled);
  // A different tx confirming the same outpoint (e.g. mined by someone else).
  const Transaction confirmed = make_tx(1, 99);
  pool.remove_confirmed({confirmed});
  EXPECT_FALSE(pool.contains(pooled.txid()));
}

TEST(Mempool, RemoveConfirmedIgnoresUnknown) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  pool.remove_confirmed({make_tx(2, 1)});
  EXPECT_EQ(pool.size(), 1u);
}

// --- fee priority and bounded capacity (docs/INGEST.md) ----------------------

TEST(Mempool, TakeDrainsBestFeeFirst) {
  Mempool pool;
  const Transaction low = make_tx(1, 1);
  const Transaction high = make_tx(2, 1);
  const Transaction mid = make_tx(3, 1);
  pool.add(low, 1);
  pool.add(high, 9);
  pool.add(mid, 5);
  const auto taken = pool.take(3);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].txid(), high.txid());
  EXPECT_EQ(taken[1].txid(), mid.txid());
  EXPECT_EQ(taken[2].txid(), low.txid());
}

TEST(Mempool, EqualFeesKeepArrivalOrder) {
  Mempool pool;
  const Transaction a = make_tx(1, 1);
  const Transaction b = make_tx(2, 1);
  pool.add(a, 7);
  pool.add(b, 7);
  const auto taken = pool.take(2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].txid(), a.txid());
  EXPECT_EQ(taken[1].txid(), b.txid());
}

TEST(Mempool, CapacityEvictsLowestFee) {
  Mempool pool(Mempool::Config{.capacity = 2});
  const Transaction low = make_tx(1, 1);
  pool.add(low, 1);
  pool.add(make_tx(2, 1), 5);
  std::vector<Transaction> evicted;
  EXPECT_TRUE(pool.add(make_tx(3, 1), 9, &evicted));
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].txid(), low.txid());
  EXPECT_FALSE(pool.contains(low.txid()));
  EXPECT_EQ(pool.stats().evictions, 1u);
  // The evicted tx's input is spendable again.
  EXPECT_TRUE(pool.add(make_tx(1, 2), 9));
}

TEST(Mempool, FullPoolRejectsFeeThatCannotEvict) {
  Mempool pool(Mempool::Config{.capacity = 2});
  pool.add(make_tx(1, 1), 5);
  pool.add(make_tx(2, 1), 5);
  // Equal fee loses to the incumbents (later admission = worse key).
  EXPECT_FALSE(pool.add(make_tx(3, 1), 5));
  EXPECT_FALSE(pool.add(make_tx(4, 1), 1));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.stats().rejected_full, 2u);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

TEST(Mempool, StatsTrackDecisions) {
  Mempool pool(Mempool::Config{.capacity = 2});
  const Transaction a = make_tx(1, 1);
  pool.add(a, 1);
  pool.add(a, 1);            // dup
  pool.add(make_tx(1, 2), 1);  // conflict (same outpoint)
  pool.add(make_tx(2, 1), 2);
  pool.add(make_tx(3, 1), 9);  // evicts a
  const Mempool::Stats& s = pool.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.rejected_dup, 1u);
  EXPECT_EQ(s.rejected_conflict, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size_peak, 2u);
}

TEST(Mempool, ZeroFeePoolMatchesFifo) {
  // Back-compat: default-fee adds behave exactly like the original FIFO
  // pool, so pre-priority callers see identical behaviour.
  Mempool pool;
  std::vector<Hash256> order;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const Transaction tx = make_tx(i, 1);
    order.push_back(tx.txid());
    pool.add(tx);
  }
  for (const Hash256& expected : order) {
    const auto taken = pool.take(1);
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0].txid(), expected);
  }
}

}  // namespace
}  // namespace ici
