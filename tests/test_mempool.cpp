#include "chain/mempool.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

Transaction make_tx(std::uint64_t input_salt, std::uint64_t nonce) {
  const KeyPair owner = KeyPair::from_seed(input_salt);
  ByteWriter w;
  w.u64(input_salt);
  Transaction tx({TxInput{OutPoint{Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size())), 0},
                          {},
                          {}}},
                 {TxOutput{10, owner.pub}}, nonce);
  tx.sign_all_inputs(owner);
  return tx;
}

TEST(Mempool, AddAndContains) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.add(tx));
  EXPECT_TRUE(pool.contains(tx.txid()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RejectsDuplicateTxid) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  EXPECT_TRUE(pool.add(tx));
  EXPECT_FALSE(pool.add(tx));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, RejectsConflictingSpend) {
  Mempool pool;
  EXPECT_TRUE(pool.add(make_tx(1, 1)));
  // Same input (salt 1), different nonce → different txid, same outpoint.
  EXPECT_FALSE(pool.add(make_tx(1, 2)));
}

TEST(Mempool, TakeReturnsArrivalOrder) {
  Mempool pool;
  const Transaction a = make_tx(1, 1);
  const Transaction b = make_tx(2, 1);
  const Transaction c = make_tx(3, 1);
  pool.add(a);
  pool.add(b);
  pool.add(c);
  const auto taken = pool.take(2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].txid(), a.txid());
  EXPECT_EQ(taken[1].txid(), b.txid());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, TakeMoreThanAvailable) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  EXPECT_EQ(pool.take(10).size(), 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, TakenInputsBecomeSpendableAgain) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  (void)pool.take(1);
  // Once removed from the pool, a conflicting spend is admissible again.
  EXPECT_TRUE(pool.add(make_tx(1, 2)));
}

TEST(Mempool, RemoveConfirmedDropsTx) {
  Mempool pool;
  const Transaction tx = make_tx(1, 1);
  pool.add(tx);
  pool.remove_confirmed({tx});
  EXPECT_FALSE(pool.contains(tx.txid()));
  EXPECT_TRUE(pool.take(10).empty());
}

TEST(Mempool, RemoveConfirmedEvictsConflicts) {
  Mempool pool;
  const Transaction pooled = make_tx(1, 1);
  pool.add(pooled);
  // A different tx confirming the same outpoint (e.g. mined by someone else).
  const Transaction confirmed = make_tx(1, 99);
  pool.remove_confirmed({confirmed});
  EXPECT_FALSE(pool.contains(pooled.txid()));
}

TEST(Mempool, RemoveConfirmedIgnoresUnknown) {
  Mempool pool;
  pool.add(make_tx(1, 1));
  pool.remove_confirmed({make_tx(2, 1)});
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace ici
