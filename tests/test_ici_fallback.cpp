// Cross-cluster retrieval fallback: when a block's own-cluster holders are
// unreachable, the fetch widens to sibling clusters — the network keeps one
// copy (or shard set) per cluster, so cluster-local outages become latency
// instead of misses.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(bool fallback, std::size_t data = 0, std::size_t parity = 0) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);
    IciNetworkConfig ncfg;
    ncfg.node_count = 24;
    ncfg.ici.cluster_count = 3;
    ncfg.ici.cross_cluster_fallback = fallback;
    ncfg.ici.erasure_data = data;
    ncfg.ici.erasure_parity = parity;
    net = std::make_unique<IciNetwork>(ncfg);
    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
    for (int i = 0; i < 3; ++i) {
      chain->append(gen->next_block(*chain));
      EXPECT_GT(net->disseminate_and_settle(chain->tip()), 0u);
    }
  }

  /// Takes every own-cluster holder of (hash, height) in `cluster` offline.
  void darken_cluster_holders(const Hash256& hash, std::uint64_t height,
                              std::size_t cluster) {
    std::vector<cluster::NodeId> holders;
    if (net->coded()) {
      holders = net->shard_holders(hash, height, cluster);
    } else {
      holders = net->storers_of(hash, height, cluster, false);
    }
    for (auto id : holders) {
      net->network().set_online(id, false);
      net->directory().set_online(id, false);
    }
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

cluster::NodeId pick_online_non_holder(Rig& rig, const Hash256& hash, std::size_t cluster) {
  for (auto id : rig.net->directory().members(cluster)) {
    if (rig.net->directory().online(id) && !rig.net->node(id).store().has_block(hash) &&
        !rig.net->node(id).shards().has_any(hash)) {
      return id;
    }
  }
  return cluster::kNoNode;
}

TEST(CrossClusterFallback, ServesBlockWhenOwnClusterDark) {
  Rig rig(/*fallback=*/true);
  const Hash256 hash = rig.chain->at_height(2).hash();
  rig.darken_cluster_holders(hash, 2, 0);

  const auto requester = pick_online_non_holder(rig, hash, 0);
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  sim::SimTime latency = 0;
  rig.net->node(requester).fetch_block(hash, 2, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash;
    latency = r.elapsed_us;
  });
  rig.net->settle();
  EXPECT_TRUE(got) << "sibling clusters hold the block";
  EXPECT_GT(latency, 0u);
}

TEST(CrossClusterFallback, DisabledFallbackMisses) {
  Rig rig(/*fallback=*/false);
  const Hash256 hash = rig.chain->at_height(2).hash();
  rig.darken_cluster_holders(hash, 2, 0);

  const auto requester = pick_online_non_holder(rig, hash, 0);
  ASSERT_NE(requester, cluster::kNoNode);
  bool called = false, got = true;
  rig.net->node(requester).fetch_block(hash, 2, [&](const FetchResult& r) {
    called = true;
    got = r.block != nullptr;
  });
  rig.net->settle();
  EXPECT_TRUE(called);
  EXPECT_FALSE(got) << "without fallback a dark cluster cannot serve";
}

TEST(CrossClusterFallback, CodedModeUsesSiblingShards) {
  // Every cluster encodes the same payload with the same code, so sibling
  // shards are interchangeable.
  Rig rig(/*fallback=*/true, /*data=*/3, /*parity=*/1);
  const Hash256 hash = rig.chain->at_height(1).hash();
  rig.darken_cluster_holders(hash, 1, 0);

  const auto requester = pick_online_non_holder(rig, hash, 0);
  ASSERT_NE(requester, cluster::kNoNode);
  bool got = false;
  rig.net->node(requester).fetch_block(hash, 1, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == hash;
  });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(CrossClusterFallback, NetworkAvailabilityAboveClusterAvailability) {
  Rig rig(/*fallback=*/true);
  const Hash256 hash = rig.chain->at_height(2).hash();
  rig.darken_cluster_holders(hash, 2, 0);
  EXPECT_LT(rig.net->availability(), 1.0) << "cluster 0 lost local service";
  EXPECT_DOUBLE_EQ(rig.net->network_availability(), 1.0)
      << "the network still holds copies in other clusters";
}

TEST(CrossClusterFallback, NetworkAvailabilityCodedCountsDistinctShards) {
  Rig rig(/*fallback=*/true, /*data=*/3, /*parity=*/1);
  EXPECT_DOUBLE_EQ(rig.net->network_availability(), 1.0);
  // Knock a whole cluster's holders for one block offline: still decodable
  // network-wide.
  const Hash256 hash = rig.chain->at_height(1).hash();
  rig.darken_cluster_holders(hash, 1, 0);
  EXPECT_DOUBLE_EQ(rig.net->network_availability(), 1.0);
}

}  // namespace
}  // namespace ici::core
