#include "cluster/directory.h"

#include <gtest/gtest.h>

namespace ici::cluster {
namespace {

ClusterDirectory make_directory(std::size_t n = 12, std::size_t k = 3) {
  auto nodes = generate_topology(n, 2, 5);
  Clustering clustering = RandomClusterer(1).cluster(nodes, k);
  return ClusterDirectory(std::move(nodes), std::move(clustering));
}

TEST(Directory, BasicLookups) {
  const ClusterDirectory dir = make_directory();
  EXPECT_EQ(dir.cluster_count(), 3u);
  EXPECT_EQ(dir.node_count(), 12u);
  std::size_t total = 0;
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    for (NodeId id : dir.members(c)) {
      EXPECT_EQ(dir.cluster_of(id), c);
      ++total;
    }
  }
  EXPECT_EQ(total, 12u);
}

TEST(Directory, RejectsIncompleteClustering) {
  auto nodes = generate_topology(4, 1, 1);
  Clustering partial;
  partial.clusters = {{0, 1}};  // misses 2, 3
  EXPECT_THROW(ClusterDirectory(std::move(nodes), std::move(partial)), std::invalid_argument);
}

TEST(Directory, RejectsUnknownNodeInClustering) {
  auto nodes = generate_topology(2, 1, 1);
  Clustering bad;
  bad.clusters = {{0, 1, 99}};
  EXPECT_THROW(ClusterDirectory(std::move(nodes), std::move(bad)), std::invalid_argument);
}

TEST(Directory, OnlineTracking) {
  ClusterDirectory dir = make_directory();
  const NodeId id = dir.members(0).front();
  EXPECT_TRUE(dir.online(id));
  dir.set_online(id, false);
  EXPECT_FALSE(dir.online(id));
  const auto online = dir.online_members(0);
  for (const NodeInfo& m : online) EXPECT_NE(m.id, id);
  EXPECT_EQ(online.size(), dir.members(0).size() - 1);
}

TEST(Directory, HeadRotatesWithHeight) {
  const ClusterDirectory dir = make_directory(12, 2);
  const std::size_t m = dir.members(0).size();
  std::vector<NodeId> heads;
  for (std::uint64_t h = 0; h < m; ++h) {
    const auto head = dir.head(0, h);
    ASSERT_TRUE(head.has_value());
    heads.push_back(*head);
  }
  // All members take a turn over one full rotation.
  std::sort(heads.begin(), heads.end());
  std::vector<NodeId> expected = dir.members(0);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(heads, expected);
}

TEST(Directory, HeadSkipsOfflineMembers) {
  ClusterDirectory dir = make_directory(12, 2);
  const NodeId victim = dir.members(0).front();
  dir.set_online(victim, false);
  for (std::uint64_t h = 0; h < 20; ++h) {
    const auto head = dir.head(0, h);
    ASSERT_TRUE(head.has_value());
    EXPECT_NE(*head, victim);
  }
}

TEST(Directory, HeadNulloptWhenClusterDark) {
  ClusterDirectory dir = make_directory(6, 2);
  for (NodeId id : dir.members(0)) dir.set_online(id, false);
  EXPECT_FALSE(dir.head(0, 1).has_value());
  EXPECT_TRUE(dir.head(1, 1).has_value());
}

TEST(Directory, AddMemberJoins) {
  ClusterDirectory dir = make_directory(6, 2);
  NodeInfo joiner{100, {1, 2}, 1.5};
  dir.add_member(joiner, 1);
  EXPECT_EQ(dir.cluster_of(100), 1u);
  EXPECT_TRUE(dir.online(100));
  EXPECT_EQ(dir.info(100).capacity, 1.5);
  EXPECT_NE(std::find(dir.members(1).begin(), dir.members(1).end(), 100), dir.members(1).end());
}

TEST(Directory, AddDuplicateThrows) {
  ClusterDirectory dir = make_directory(6, 2);
  const NodeId existing = dir.members(0).front();
  EXPECT_THROW(dir.add_member(NodeInfo{existing, {0, 0}, 1.0}, 0), std::invalid_argument);
}

TEST(Directory, RemoveMemberLeaves) {
  ClusterDirectory dir = make_directory(6, 2);
  const NodeId victim = dir.members(0).front();
  dir.remove_member(victim);
  EXPECT_EQ(std::find(dir.members(0).begin(), dir.members(0).end(), victim),
            dir.members(0).end());
  EXPECT_THROW((void)dir.cluster_of(victim), std::out_of_range);
}

TEST(Directory, UnknownIdsThrow) {
  ClusterDirectory dir = make_directory();
  EXPECT_THROW((void)dir.cluster_of(999), std::out_of_range);
  EXPECT_THROW((void)dir.online(999), std::out_of_range);
  EXPECT_THROW(dir.set_online(999, true), std::out_of_range);
  EXPECT_THROW((void)dir.info(999), std::out_of_range);
  EXPECT_THROW((void)dir.members(99), std::out_of_range);
}

}  // namespace
}  // namespace ici::cluster
