#include "storage/block_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "chain/workload.h"
#include "storage/disk_backend.h"
#include "storage/storage_meter.h"

namespace ici {
namespace {

Chain small_chain(std::size_t blocks = 5) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 3;
  return ChainGenerator(cfg).generate();
}

TEST(BlockStore, HeaderOnlyStorage) {
  const Chain chain = small_chain();
  BlockStore store;
  for (const Block& b : chain.blocks()) store.put(StoredBlock::header_only(b.header()));
  EXPECT_EQ(store.header_count(), chain.size());
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.body_bytes(), 0u);
  EXPECT_EQ(store.header_bytes(), chain.size() * BlockHeader::kWireSize);

  const auto h2 = store.header_at(2);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(h2->hash(), chain.at_height(2).hash());
  EXPECT_TRUE(store.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_FALSE(store.header_at(99).has_value());
}

TEST(BlockStore, PutBlockStoresBodyAndHeader) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put(HashedBlock(chain.at_height(1)));
  EXPECT_TRUE(store.has_block(chain.at_height(1).hash()));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.header_count(), 1u);
  EXPECT_EQ(store.body_bytes(), chain.at_height(1).serialized_size());
  const BlockRef ref = store.block_at(1);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->hash(), chain.at_height(1).hash());
  EXPECT_FALSE(ref.cold);
  EXPECT_EQ(ref.io_delay_us, 0u);
}

TEST(BlockStore, PutBlockIdempotent) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put(HashedBlock(chain.at_height(1)));
  store.put(HashedBlock(chain.at_height(1)));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.body_bytes(), chain.at_height(1).serialized_size());
}

TEST(BlockStore, PruneFreesBytes) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put(HashedBlock(chain.at_height(1)));
  store.put(HashedBlock(chain.at_height(2)));
  const std::uint64_t freed = store.prune_block(chain.at_height(1).hash());
  EXPECT_EQ(freed, chain.at_height(1).serialized_size());
  EXPECT_FALSE(store.has_block(chain.at_height(1).hash()));
  // Header survives pruning.
  EXPECT_TRUE(store.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_EQ(store.body_bytes(), chain.at_height(2).serialized_size());
}

TEST(BlockStore, PruneMissingReturnsZero) {
  BlockStore store;
  EXPECT_EQ(store.prune_block(Hash256{}), 0u);
}

// Regression: pruning a body must not disturb the header-side bookkeeping
// (tip height, header count/bytes), and a later re-put of the same block
// must restore body_bytes() to the exact pre-prune value — no double-charge,
// no leak. Holds for both backends.
TEST(BlockStore, PruneThenRePutRestoresExactAccounting) {
  const Chain chain = small_chain();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ici-store-test-reput";
  std::filesystem::remove_all(dir);

  for (const bool disk : {false, true}) {
    BlockStore store;
    if (disk) {
      StoreConfig cfg;
      cfg.backend = "disk";
      store.set_backend(std::make_unique<DiskBackend>(cfg, dir));
    }
    for (const Block& b : chain.blocks()) store.put(StoredBlock::header_only(b.header()));
    store.put(HashedBlock(chain.at_height(1)));
    store.put(HashedBlock(chain.at_height(2)));

    const std::uint64_t body_before = store.body_bytes();
    const std::uint64_t header_before = store.header_bytes();
    const auto tip_before = store.tip_height();
    ASSERT_TRUE(tip_before.has_value());

    EXPECT_EQ(store.prune_block(chain.at_height(1).hash()),
              chain.at_height(1).serialized_size());
    EXPECT_EQ(store.tip_height(), tip_before) << "disk=" << disk;
    EXPECT_EQ(store.header_count(), chain.size());
    EXPECT_EQ(store.header_bytes(), header_before);
    EXPECT_EQ(store.block_count(), 1u);

    store.put(HashedBlock(chain.at_height(1)));
    EXPECT_EQ(store.body_bytes(), body_before) << "disk=" << disk;
    EXPECT_EQ(store.block_count(), 2u);
    EXPECT_EQ(store.tip_height(), tip_before);
    ASSERT_TRUE(store.block_by_hash(chain.at_height(1).hash()));
  }
  std::filesystem::remove_all(dir);
}

TEST(BlockStore, SharedPtrStorageSharesObject) {
  const Chain chain = small_chain();
  auto shared = std::make_shared<const Block>(chain.at_height(1));
  BlockStore a, b;
  a.put(HashedBlock(shared));
  b.put(HashedBlock(shared, shared->hash()));
  EXPECT_EQ(a.block_by_hash(shared->hash()).share().get(),
            b.block_by_hash(shared->hash()).share().get());
  // Both stores still account for the full bytes independently.
  EXPECT_EQ(a.body_bytes(), b.body_bytes());
}

TEST(BlockStore, StoredHashesComplete) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put(HashedBlock(chain.at_height(1)));
  store.put(HashedBlock(chain.at_height(3)));
  const auto hashes = store.stored_hashes();
  EXPECT_EQ(hashes.size(), 2u);
  for (const Hash256& h : hashes) EXPECT_TRUE(store.has_block(h));
}

TEST(BlockStore, TotalBytesIsBodiesPlusHeaders) {
  const Chain chain = small_chain();
  BlockStore store;
  for (const Block& b : chain.blocks()) store.put(StoredBlock::header_only(b.header()));
  store.put(HashedBlock(chain.at_height(1)));
  EXPECT_EQ(store.total_bytes(), store.body_bytes() + store.header_bytes());
}

TEST(BlockStore, ReaderAndWriterViews) {
  const Chain chain = small_chain();
  BlockStore store;
  const BlockWriter writer(store);
  writer.put(HashedBlock(chain.at_height(1)));

  const BlockReader reader = writer.reader();
  EXPECT_TRUE(reader.has_block(chain.at_height(1).hash()));
  EXPECT_EQ(reader.block_count(), 1u);
  const BlockRef ref = reader.block_by_hash(chain.at_height(1).hash());
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->hash(), chain.at_height(1).hash());

  EXPECT_EQ(writer.prune(chain.at_height(1).hash()), chain.at_height(1).serialized_size());
  EXPECT_FALSE(reader.has_block(chain.at_height(1).hash()));
}

TEST(StorageMeter, SnapshotAggregates) {
  const Chain chain = small_chain();
  BlockStore a, b;
  a.put(HashedBlock(chain.at_height(1)));
  b.put(HashedBlock(chain.at_height(1)));
  b.put(HashedBlock(chain.at_height(2)));

  const StorageSnapshot snap = StorageMeter::snapshot({&a, &b});
  EXPECT_EQ(snap.node_count, 2u);
  EXPECT_EQ(snap.total_bytes, a.total_bytes() + b.total_bytes());
  EXPECT_EQ(snap.max_bytes, static_cast<double>(b.total_bytes()));
  EXPECT_EQ(snap.min_bytes, static_cast<double>(a.total_bytes()));
  EXPECT_GT(snap.cv, 0.0);
}

TEST(StorageMeter, EmptySnapshot) {
  const StorageSnapshot snap = StorageMeter::snapshot({});
  EXPECT_EQ(snap.node_count, 0u);
  EXPECT_EQ(snap.total_bytes, 0u);
}

}  // namespace
}  // namespace ici
