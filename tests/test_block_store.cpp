#include "storage/block_store.h"

#include <gtest/gtest.h>

#include "chain/workload.h"
#include "storage/storage_meter.h"

namespace ici {
namespace {

Chain small_chain(std::size_t blocks = 5) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = 3;
  return ChainGenerator(cfg).generate();
}

TEST(BlockStore, HeaderOnlyStorage) {
  const Chain chain = small_chain();
  BlockStore store;
  for (const Block& b : chain.blocks()) store.put_header(b.header());
  EXPECT_EQ(store.header_count(), chain.size());
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.body_bytes(), 0u);
  EXPECT_EQ(store.header_bytes(), chain.size() * BlockHeader::kWireSize);

  const auto h2 = store.header_at(2);
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(h2->hash(), chain.at_height(2).hash());
  EXPECT_TRUE(store.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_FALSE(store.header_at(99).has_value());
}

TEST(BlockStore, PutBlockStoresBodyAndHeader) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put_block(chain.at_height(1));
  EXPECT_TRUE(store.has_block(chain.at_height(1).hash()));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.header_count(), 1u);
  EXPECT_EQ(store.body_bytes(), chain.at_height(1).serialized_size());
  ASSERT_NE(store.block_at(1), nullptr);
  EXPECT_EQ(store.block_at(1)->hash(), chain.at_height(1).hash());
}

TEST(BlockStore, PutBlockIdempotent) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put_block(chain.at_height(1));
  store.put_block(chain.at_height(1));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.body_bytes(), chain.at_height(1).serialized_size());
}

TEST(BlockStore, PruneFreesBytes) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put_block(chain.at_height(1));
  store.put_block(chain.at_height(2));
  const std::uint64_t freed = store.prune_block(chain.at_height(1).hash());
  EXPECT_EQ(freed, chain.at_height(1).serialized_size());
  EXPECT_FALSE(store.has_block(chain.at_height(1).hash()));
  // Header survives pruning.
  EXPECT_TRUE(store.header_by_hash(chain.at_height(1).hash()).has_value());
  EXPECT_EQ(store.body_bytes(), chain.at_height(2).serialized_size());
}

TEST(BlockStore, PruneMissingReturnsZero) {
  BlockStore store;
  EXPECT_EQ(store.prune_block(Hash256{}), 0u);
}

TEST(BlockStore, SharedPtrStorageSharesObject) {
  const Chain chain = small_chain();
  auto shared = std::make_shared<const Block>(chain.at_height(1));
  BlockStore a, b;
  a.put_block(shared);
  b.put_block(shared, shared->hash());
  EXPECT_EQ(a.block_ptr(shared->hash()).get(), b.block_ptr(shared->hash()).get());
  // Both stores still account for the full bytes independently.
  EXPECT_EQ(a.body_bytes(), b.body_bytes());
}

TEST(BlockStore, StoredHashesComplete) {
  const Chain chain = small_chain();
  BlockStore store;
  store.put_block(chain.at_height(1));
  store.put_block(chain.at_height(3));
  const auto hashes = store.stored_hashes();
  EXPECT_EQ(hashes.size(), 2u);
  for (const Hash256& h : hashes) EXPECT_TRUE(store.has_block(h));
}

TEST(BlockStore, TotalBytesIsBodiesPlusHeaders) {
  const Chain chain = small_chain();
  BlockStore store;
  for (const Block& b : chain.blocks()) store.put_header(b.header());
  store.put_block(chain.at_height(1));
  EXPECT_EQ(store.total_bytes(), store.body_bytes() + store.header_bytes());
}

TEST(StorageMeter, SnapshotAggregates) {
  const Chain chain = small_chain();
  BlockStore a, b;
  a.put_block(chain.at_height(1));
  b.put_block(chain.at_height(1));
  b.put_block(chain.at_height(2));

  const StorageSnapshot snap = StorageMeter::snapshot({&a, &b});
  EXPECT_EQ(snap.node_count, 2u);
  EXPECT_EQ(snap.total_bytes, a.total_bytes() + b.total_bytes());
  EXPECT_EQ(snap.max_bytes, static_cast<double>(b.total_bytes()));
  EXPECT_EQ(snap.min_bytes, static_cast<double>(a.total_bytes()));
  EXPECT_GT(snap.cv, 0.0);
}

TEST(StorageMeter, EmptySnapshot) {
  const StorageSnapshot snap = StorageMeter::snapshot({});
  EXPECT_EQ(snap.node_count, 0u);
  EXPECT_EQ(snap.total_bytes, 0u);
}

}  // namespace
}  // namespace ici
