#include "common/flags.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

struct Bound {
  std::uint64_t nodes = 10;
  double fraction = 0.5;
  std::string name = "default";
  bool verbose = false;
};

FlagParser make_parser(Bound& b) {
  FlagParser p("test", "test parser");
  p.add_uint("nodes", &b.nodes, "node count");
  p.add_double("fraction", &b.fraction, "a fraction");
  p.add_string("name", &b.name, "a name");
  p.add_bool("verbose", &b.verbose, "chatty");
  return p;
}

bool run(FlagParser& p, std::vector<const char*> args, std::string* err = nullptr) {
  args.insert(args.begin(), "prog");
  return p.parse(static_cast<int>(args.size()), args.data(), err);
}

TEST(Flags, DefaultsSurviveEmptyArgs) {
  Bound b;
  FlagParser p = make_parser(b);
  EXPECT_TRUE(run(p, {}));
  EXPECT_EQ(b.nodes, 10u);
  EXPECT_EQ(b.name, "default");
  EXPECT_FALSE(b.verbose);
}

TEST(Flags, EqualsForm) {
  Bound b;
  FlagParser p = make_parser(b);
  EXPECT_TRUE(run(p, {"--nodes=42", "--fraction=0.25", "--name=x", "--verbose=true"}));
  EXPECT_EQ(b.nodes, 42u);
  EXPECT_DOUBLE_EQ(b.fraction, 0.25);
  EXPECT_EQ(b.name, "x");
  EXPECT_TRUE(b.verbose);
}

TEST(Flags, SpaceForm) {
  Bound b;
  FlagParser p = make_parser(b);
  EXPECT_TRUE(run(p, {"--nodes", "7", "--name", "hello"}));
  EXPECT_EQ(b.nodes, 7u);
  EXPECT_EQ(b.name, "hello");
}

TEST(Flags, BareBoolSetsTrue) {
  Bound b;
  FlagParser p = make_parser(b);
  EXPECT_TRUE(run(p, {"--verbose"}));
  EXPECT_TRUE(b.verbose);
}

TEST(Flags, BoolFalseForm) {
  Bound b;
  b.verbose = true;
  FlagParser p("t", "t");
  p.add_bool("verbose", &b.verbose, "chatty");
  std::vector<const char*> args = {"prog", "--verbose=false"};
  EXPECT_TRUE(p.parse(2, args.data(), nullptr));
  EXPECT_FALSE(b.verbose);
}

TEST(Flags, UnknownFlagFails) {
  Bound b;
  FlagParser p = make_parser(b);
  std::string err;
  EXPECT_FALSE(run(p, {"--bogus=1"}, &err));
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
}

TEST(Flags, BadValueFails) {
  Bound b;
  FlagParser p = make_parser(b);
  std::string err;
  EXPECT_FALSE(run(p, {"--nodes=abc"}, &err));
  EXPECT_NE(err.find("bad value"), std::string::npos);
  EXPECT_FALSE(run(p, {"--fraction=xyz"}, &err));
  EXPECT_FALSE(run(p, {"--verbose=maybe"}, &err));
}

TEST(Flags, MissingValueFails) {
  Bound b;
  FlagParser p = make_parser(b);
  std::string err;
  EXPECT_FALSE(run(p, {"--nodes"}, &err));
  EXPECT_NE(err.find("needs a value"), std::string::npos);
}

TEST(Flags, PositionalArgumentFails) {
  Bound b;
  FlagParser p = make_parser(b);
  std::string err;
  EXPECT_FALSE(run(p, {"stray"}, &err));
  EXPECT_NE(err.find("positional"), std::string::npos);
}

TEST(Flags, HelpReturnsFalseWithEmptyError) {
  Bound b;
  FlagParser p = make_parser(b);
  std::string err = "sentinel";
  EXPECT_FALSE(run(p, {"--help"}, &err));
  EXPECT_TRUE(err.empty());
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  Bound b;
  FlagParser p = make_parser(b);
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
}

}  // namespace
}  // namespace ici
