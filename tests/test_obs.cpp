#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/json.h"
#include "metrics/registry.h"
#include "obs/bench_report.h"
#include "obs/trace.h"

namespace ici::obs {
namespace {

// ---------------------------------------------------------------- TraceSink

TEST(TraceSink, RecordsWallAndSimIndependently) {
  TraceSink sink;
  sink.record_wall("verify/slice", 100.0);
  sink.record_wall("verify/slice", 300.0);
  sink.record_sim("bootstrap/fetch", 5000.0);

  const auto aggs = sink.aggregates();
  ASSERT_EQ(aggs.size(), 2u);
  // Sorted by label.
  EXPECT_EQ(aggs[0].label, "bootstrap/fetch");
  EXPECT_FALSE(aggs[0].has_wall);
  EXPECT_TRUE(aggs[0].has_sim);
  EXPECT_EQ(aggs[0].sim_us.count, 1u);
  EXPECT_EQ(aggs[0].sim_us.total, 5000.0);

  EXPECT_EQ(aggs[1].label, "verify/slice");
  EXPECT_TRUE(aggs[1].has_wall);
  EXPECT_FALSE(aggs[1].has_sim);
  EXPECT_EQ(aggs[1].wall_us.count, 2u);
  EXPECT_EQ(aggs[1].wall_us.total, 400.0);
}

TEST(TraceSink, AggregationMathMatchesDistribution) {
  TraceSink sink;
  for (int i = 1; i <= 100; ++i) sink.record_sim("x", static_cast<double>(i));
  const auto aggs = sink.aggregates();
  ASSERT_EQ(aggs.size(), 1u);
  const metrics::Distribution* d = sink.sim_distribution("x");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(aggs[0].sim_us.count, 100u);
  EXPECT_EQ(aggs[0].sim_us.total, 5050.0);
  EXPECT_EQ(aggs[0].sim_us.p50, d->p50());
  EXPECT_EQ(aggs[0].sim_us.p99, d->p99());
}

TEST(TraceSink, ResetDropsSamplesKeepsClock) {
  TraceSink sink;
  sink.set_sim_clock([] { return std::uint64_t{7}; });
  sink.record_wall("a", 1.0);
  sink.reset();
  EXPECT_TRUE(sink.aggregates().empty());
  EXPECT_TRUE(sink.has_sim_clock());
  EXPECT_EQ(sink.sim_now(), 7u);
}

TEST(TraceSink, ClockTokenProtectsNewerClock) {
  TraceSink sink;
  const std::uint64_t first = sink.set_sim_clock([] { return std::uint64_t{1}; });
  const std::uint64_t second = sink.set_sim_clock([] { return std::uint64_t{2}; });
  ASSERT_NE(first, second);
  // A stale owner (e.g. a destroyed network) must not yank the new clock.
  sink.clear_sim_clock(first);
  EXPECT_TRUE(sink.has_sim_clock());
  EXPECT_EQ(sink.sim_now(), 2u);
  sink.clear_sim_clock(second);
  EXPECT_FALSE(sink.has_sim_clock());
}

// --------------------------------------------------------------------- Span

TEST(Span, RecordsWallSampleOnDestruction) {
  TraceSink sink;
  { const Span span("work", sink); }
  const auto aggs = sink.aggregates();
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].label, "work");
  EXPECT_TRUE(aggs[0].has_wall);
  EXPECT_EQ(aggs[0].wall_us.count, 1u);
}

TEST(Span, NestedSpansPrefixParentPath) {
  TraceSink sink;
  {
    const Span outer("bootstrap", sink);
    EXPECT_EQ(sink.current_path(), "bootstrap");
    {
      const Span inner("fetch", sink);
      EXPECT_EQ(inner.label(), "bootstrap/fetch");
      EXPECT_EQ(sink.current_path(), "bootstrap/fetch");
      { const Span leaf("retry", sink); EXPECT_EQ(leaf.label(), "bootstrap/fetch/retry"); }
    }
    EXPECT_EQ(sink.current_path(), "bootstrap");
  }
  EXPECT_EQ(sink.current_path(), "");

  const auto aggs = sink.aggregates();
  ASSERT_EQ(aggs.size(), 3u);
  EXPECT_EQ(aggs[0].label, "bootstrap");
  EXPECT_EQ(aggs[1].label, "bootstrap/fetch");
  EXPECT_EQ(aggs[2].label, "bootstrap/fetch/retry");
}

TEST(Span, SimDeltaOnlyWhenSimAdvances) {
  TraceSink sink;
  std::uint64_t now = 1000;
  sink.set_sim_clock([&now] { return now; });

  { const Span still("still", sink); }          // sim did not move
  { const Span moving("moving", sink); now += 250; }

  const metrics::Distribution* still_sim = sink.sim_distribution("still");
  EXPECT_TRUE(still_sim == nullptr || still_sim->count() == 0);
  const metrics::Distribution* moving_sim = sink.sim_distribution("moving");
  ASSERT_NE(moving_sim, nullptr);
  ASSERT_EQ(moving_sim->count(), 1u);
  EXPECT_EQ(moving_sim->mean(), 250.0);
}

// --------------------------------------------------------------- JSON layer

TEST(JsonWriter, WritesNestedDocument) {
  JsonWriter w;
  w.begin_object()
      .member("name", "bench")
      .member("n", std::int64_t{-3})
      .member("pi", 3.5)
      .member("on", true)
      .member_null("none")
      .key("list")
      .begin_array()
      .value(1)
      .value("two")
      .end_array()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"bench","n":-3,"pi":3.5,"on":true,"none":null,"list":[1,"two"]})");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::quiet_NaN()).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, ThrowsOnUnbalancedDocument) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.str(), std::logic_error);
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_array().value("a\"b\\c\n\t").end_array();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\"]");
}

TEST(JsonValue, ParsesScalarsAndContainers) {
  const JsonValue doc = JsonValue::parse(
      R"({"s":"hi","n":-2.5,"t":true,"z":null,"arr":[1,2,3],"obj":{"k":"v"}})");
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_EQ(doc.at("n").as_number(), -2.5);
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  EXPECT_EQ(doc.at("arr").size(), 3u);
  EXPECT_EQ(doc.at("arr").at(1).as_number(), 2.0);
  EXPECT_EQ(doc.at("obj").at("k").as_string(), "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonValue, RoundTripsEscapes) {
  JsonWriter w;
  w.begin_array().value("tab\there \"quoted\" \\slash").end_array();
  const JsonValue doc = JsonValue::parse(w.str());
  EXPECT_EQ(doc.at(std::size_t{0}).as_string(), "tab\there \"quoted\" \\slash");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1] trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

// -------------------------------------------------------------- BenchReport

TEST(BenchReport, ToJsonRoundTrips) {
  TraceSink sink;
  sink.record_wall("verify/slice", 10.0);
  sink.record_sim("bootstrap/fetch", 700.0);

  metrics::Registry reg;
  reg.counter("blocks").inc(5);
  reg.distribution("lat").add(1.0);
  reg.distribution("lat").add(3.0);

  BenchReport report("unit", 99);
  report.set_smoke(true);
  report.set_config("nodes", 40);
  report.set_config("ratio", 0.25);
  report.set_config("mode", "coded");
  report.add_row("m=8").set("bytes", std::uint64_t{1024}).set("pct", 25.0).set("ok", true);
  report.capture_registry(reg, "ici.");
  report.capture_spans(sink);

  const JsonValue doc = JsonValue::parse(report.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "ici-bench-v1");
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  EXPECT_EQ(doc.at("seed").as_number(), 99.0);
  EXPECT_TRUE(doc.at("smoke").as_bool());
  EXPECT_EQ(doc.at("config").at("nodes").as_number(), 40.0);
  EXPECT_EQ(doc.at("config").at("mode").as_string(), "coded");

  ASSERT_EQ(doc.at("rows").size(), 1u);
  const JsonValue& row = doc.at("rows").at(std::size_t{0});
  EXPECT_EQ(row.at("label").as_string(), "m=8");
  EXPECT_EQ(row.at("values").at("bytes").as_number(), 1024.0);
  EXPECT_TRUE(row.at("values").at("ok").as_bool());

  EXPECT_EQ(doc.at("counters").at("ici.blocks").as_number(), 5.0);
  const JsonValue& lat = doc.at("distributions").at("ici.lat");
  EXPECT_EQ(lat.at("count").as_number(), 2.0);
  EXPECT_EQ(lat.at("total").as_number(), 4.0);

  ASSERT_EQ(doc.at("spans").size(), 2u);
  const JsonValue& fetch = doc.at("spans").at(std::size_t{0});
  EXPECT_EQ(fetch.at("label").as_string(), "bootstrap/fetch");
  EXPECT_TRUE(fetch.at("wall_us").is_null());
  EXPECT_EQ(fetch.at("sim_us").at("count").as_number(), 1.0);
  EXPECT_EQ(fetch.at("sim_us").at("total").as_number(), 700.0);
  const JsonValue& slice = doc.at("spans").at(std::size_t{1});
  EXPECT_EQ(slice.at("label").as_string(), "verify/slice");
  EXPECT_TRUE(slice.at("sim_us").is_null());
  EXPECT_EQ(slice.at("wall_us").at("count").as_number(), 1.0);
}

TEST(BenchReport, RowSetReplacesExistingKey) {
  BenchReport report("unit", 1);
  auto& row = report.add_row("r");
  row.set("v", 1.0);
  row.set("v", 2.0);
  const JsonValue doc = JsonValue::parse(report.to_json());
  const JsonValue& values = doc.at("rows").at(std::size_t{0}).at("values");
  ASSERT_EQ(values.members().size(), 1u);
  EXPECT_EQ(values.at("v").as_number(), 2.0);
}

TEST(BenchReport, RejectsEmptyName) {
  EXPECT_THROW(BenchReport("", 0), std::invalid_argument);
}

TEST(BenchReport, WriteHonorsBenchDirAndFilename) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("ICI_BENCH_DIR", dir.c_str(), 1), 0);
  BenchReport report("write_test", 3);
  const std::string path = report.write();
  unsetenv("ICI_BENCH_DIR");

  EXPECT_NE(path.find("BENCH_write_test.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.at("name").as_string(), "write_test");
  EXPECT_EQ(doc.at("seed").as_number(), 3.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ici::obs
