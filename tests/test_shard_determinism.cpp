// The sharding contract (docs/SIMULATOR.md): the event-shard count changes
// wall clock only. A full network run — dissemination, verification,
// storage bookkeeping, traffic accounting — must produce bit-identical sim
// metrics at 1, 2, and 8 lanes, for every strategy, with and without a
// message-fault plan installed (the test_shard_determinism_faults CTest
// variant sets ICI_FAULT_PLAN). The cross-K identity deliberately excludes
// sim.shard_* (they describe the engine configuration itself) and
// sim.peak_pending / sim.far_events (per-queue calendar geometry).
//
// A differential suite also pins the engine to the pre-overhaul
// ReferenceEventQueue oracle on harness-driven cascades: same schedule,
// same execution order, sharded or not.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/fullrep.h"
#include "baseline/rapidchain.h"
#include "chain/workload.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ici/network.h"
#include "sim/faults.h"
#include "sim/reference_queue.h"
#include "sim/simulator.h"
#include "storage/storage_meter.h"

namespace ici {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 8};

class ShardDeterminism : public ::testing::Test {
 protected:
  // The sharded engine drains windows on the global pool; give it real
  // concurrency, and hand the serial default back to later suites.
  void SetUp() override { ThreadPool::set_global_threads(4); }
  void TearDown() override { ThreadPool::set_global_threads(1); }
};

/// Counters outside the cross-K bit-identity contract: the shard
/// instrumentation describes the lane configuration itself, and the two
/// structural gauges depend on per-lane calendar geometry.
bool excluded_from_identity(std::string_view name) {
  return name.rfind("sim.shard", 0) == 0 || name == "sim.peak_pending" ||
         name == "sim.far_events";
}

struct RunFingerprint {
  std::vector<sim::SimTime> commit_latency;
  double storage_mean = 0;
  double storage_max = 0;
  std::uint64_t traffic_bytes = 0;
  std::uint64_t traffic_msgs = 0;
  std::map<std::string, std::uint64_t> counters;

  bool operator==(const RunFingerprint&) const = default;
};

void install_env_fault_plan(const std::function<void(const sim::FaultPlan&)>& start) {
  // Message-fault plans only (drop/dup/delay): random crash schedules never
  // quiesce, so a settle-based run cannot carry them through the env.
  if (const char* spec = std::getenv("ICI_FAULT_PLAN");
      spec != nullptr && *spec != '\0') {
    sim::FaultPlan plan;
    std::string error;
    if (!sim::FaultPlan::parse(spec, &plan, &error)) {
      ADD_FAILURE() << "bad ICI_FAULT_PLAN: " << error;
    } else if (plan.enabled()) {
      start(plan);
    }
  }
}

template <typename Net>
void capture_counters(Net& net, RunFingerprint* fp) {
  const auto traffic = net.network().total_traffic();
  fp->traffic_bytes = traffic.bytes_sent;
  fp->traffic_msgs = traffic.msgs_sent;
  for (const auto& [name, counter] : net.metrics().counters()) {
    if (excluded_from_identity(name)) continue;
    fp->counters[name] = counter.value();
  }
}

RunFingerprint run_ici(std::size_t shards) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 24;
  ccfg.workload.wallet_count = 16;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig ncfg;
  ncfg.node_count = 24;
  ncfg.ici.cluster_count = 3;
  ncfg.shards = shards;
  core::IciNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  install_env_fault_plan([&net](const sim::FaultPlan& plan) { net.start_faults(plan); });

  RunFingerprint fp;
  for (int i = 0; i < 5; ++i) {
    chain.append(gen.next_block(chain));
    fp.commit_latency.push_back(net.disseminate_and_settle(chain.tip()));
  }
  const auto snap = net.storage_snapshot();
  fp.storage_mean = snap.mean_bytes;
  fp.storage_max = snap.max_bytes;
  capture_counters(net, &fp);
  return fp;
}

RunFingerprint run_fullrep(std::size_t shards) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 16;
  ccfg.workload.wallet_count = 16;
  ChainGenerator gen(ccfg);

  baseline::FullRepConfig ncfg;
  ncfg.node_count = 16;
  ncfg.shards = shards;
  baseline::FullRepNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  install_env_fault_plan([&net](const sim::FaultPlan& plan) { net.start_faults(plan); });

  RunFingerprint fp;
  for (int i = 0; i < 3; ++i) {
    chain.append(gen.next_block(chain));
    fp.commit_latency.push_back(net.disseminate_and_settle(chain.tip()));
  }
  capture_counters(net, &fp);
  return fp;
}

RunFingerprint run_rapidchain(std::size_t shards) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 16;
  ccfg.workload.wallet_count = 16;
  ChainGenerator gen(ccfg);

  baseline::RapidChainConfig ncfg;
  ncfg.node_count = 24;
  ncfg.committee_count = 4;
  ncfg.shards = shards;
  baseline::RapidChainNetwork net(ncfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  install_env_fault_plan([&net](const sim::FaultPlan& plan) { net.start_faults(plan); });

  RunFingerprint fp;
  for (int i = 0; i < 3; ++i) {
    chain.append(gen.next_block(chain));
    fp.commit_latency.push_back(net.disseminate_and_settle(chain.tip()));
  }
  capture_counters(net, &fp);
  return fp;
}

void expect_identical(const std::vector<RunFingerprint>& runs) {
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].commit_latency, runs[0].commit_latency)
        << "at " << kShardCounts[i] << " shards";
    EXPECT_EQ(runs[i].storage_mean, runs[0].storage_mean);
    EXPECT_EQ(runs[i].storage_max, runs[0].storage_max);
    EXPECT_EQ(runs[i].traffic_bytes, runs[0].traffic_bytes);
    EXPECT_EQ(runs[i].traffic_msgs, runs[0].traffic_msgs);
    EXPECT_EQ(runs[i].counters, runs[0].counters) << "at " << kShardCounts[i] << " shards";
  }
  // Conservative-sync hygiene: nothing ever scheduled into the past (a
  // lookahead violation would clamp and count here).
  ASSERT_TRUE(runs[0].counters.count("sim.late_events"));
  EXPECT_EQ(runs[0].counters.at("sim.late_events"), 0u);
}

TEST_F(ShardDeterminism, IciRunIsBitIdenticalAcrossShardCounts) {
  std::vector<RunFingerprint> runs;
  for (const std::size_t shards : kShardCounts) runs.push_back(run_ici(shards));
  expect_identical(runs);
  EXPECT_GT(runs[0].counters.at("sim.events_executed"), 0u);
}

TEST_F(ShardDeterminism, FullRepRunIsBitIdenticalAcrossShardCounts) {
  std::vector<RunFingerprint> runs;
  for (const std::size_t shards : kShardCounts) runs.push_back(run_fullrep(shards));
  expect_identical(runs);
}

TEST_F(ShardDeterminism, RapidChainRunIsBitIdenticalAcrossShardCounts) {
  std::vector<RunFingerprint> runs;
  for (const std::size_t shards : kShardCounts) runs.push_back(run_rapidchain(shards));
  expect_identical(runs);
}

// --- differential oracle: harness cascades vs ReferenceEventQueue ----------
//
// Harness-context keys are drawn from one monotonic counter, so the
// (at, key) order the engine executes must equal the reference queue's
// (at, insertion-seq) order — event by event, for the same randomized
// cascade, whether the Simulator is sharded or not (harness events always
// live on the sequential global queue).

class SimCascade {
 public:
  SimCascade(sim::Simulator* s, std::uint64_t seed) : sim_(s), rng_(seed) {}

  void spawn(sim::SimTime at, int depth) {
    const std::uint64_t id = next_id_++;
    sim_->at(at, [this, id, depth] { execute(id, depth); });
  }

  void execute(std::uint64_t id, int depth) {
    order_.push_back(id);
    if (depth == 0) return;
    const std::uint64_t kids = rng_.uniform(3);
    for (std::uint64_t i = 0; i < kids; ++i) {
      // Mix of strictly-later and same-time children: same-time events must
      // run in scheduling order (the key counter is the tie-break).
      spawn(sim_->now() + rng_.uniform(40), depth - 1);
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& order() const { return order_; }

 private:
  sim::Simulator* sim_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  std::vector<std::uint64_t> order_;
};

class RefCascade {
 public:
  explicit RefCascade(std::uint64_t seed) : rng_(seed) {}

  void spawn(sim::SimTime at, int depth) {
    const std::uint64_t id = next_id_++;
    q_.schedule_at(at, [this, at, id, depth] { execute(at, id, depth); });
  }

  void execute(sim::SimTime now, std::uint64_t id, int depth) {
    order_.push_back(id);
    if (depth == 0) return;
    const std::uint64_t kids = rng_.uniform(3);
    for (std::uint64_t i = 0; i < kids; ++i) spawn(now + rng_.uniform(40), depth - 1);
  }

  void run() {
    while (!q_.empty()) q_.run_next();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& order() const { return order_; }

 private:
  sim::ReferenceEventQueue q_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  std::vector<std::uint64_t> order_;
};

std::vector<std::uint64_t> sim_cascade_order(std::uint64_t seed, std::size_t shards) {
  sim::Simulator s;
  if (shards > 1) s.configure_shards(shards, /*lookahead=*/1000);
  SimCascade cascade(&s, seed);
  Rng seeds(seed ^ 0xD1CEu);
  for (int i = 0; i < 200; ++i) {
    cascade.spawn(seeds.uniform(500), /*depth=*/3);
  }
  s.run();
  return cascade.order();
}

std::vector<std::uint64_t> ref_cascade_order(std::uint64_t seed) {
  RefCascade cascade(seed);
  Rng seeds(seed ^ 0xD1CEu);
  for (int i = 0; i < 200; ++i) {
    cascade.spawn(seeds.uniform(500), /*depth=*/3);
  }
  cascade.run();
  return cascade.order();
}

TEST_F(ShardDeterminism, HarnessCascadeMatchesReferenceQueueOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto expected = ref_cascade_order(seed);
    ASSERT_GT(expected.size(), 200u) << "cascade degenerated at seed " << seed;
    EXPECT_EQ(sim_cascade_order(seed, 1), expected) << "unsharded, seed " << seed;
    EXPECT_EQ(sim_cascade_order(seed, 2), expected) << "2 shards, seed " << seed;
  }
}

}  // namespace
}  // namespace ici
