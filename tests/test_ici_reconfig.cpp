// Epoch reconfiguration: re-cluster the population and migrate blocks so
// every new cluster regains the full ledger, then prune stale copies.
#include <gtest/gtest.h>

#include "chain/workload.h"
#include "ici/network.h"

namespace ici::core {
namespace {

struct Rig {
  explicit Rig(const std::string& clustering = "kmeans", std::size_t nodes = 30,
               std::size_t clusters = 3, std::size_t blocks = 15) {
    ChainGenConfig ccfg;
    ccfg.blocks = blocks;
    ccfg.txs_per_block = 8;
    chain = std::make_unique<Chain>(ChainGenerator(ccfg).generate());

    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    ncfg.ici.clustering = clustering;
    net = std::make_unique<IciNetwork>(ncfg);
    net->init_with_genesis(chain->at_height(0));
    net->preload_chain(*chain);
  }

  /// Every cluster holds every block?
  [[nodiscard]] bool integrity() const {
    auto& dir = net->directory();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      for (const auto& b : net->committed()) {
        bool held = false;
        for (auto id : dir.members(c)) {
          if (net->node(id).store().has_block(b.hash)) {
            held = true;
            break;
          }
        }
        if (!held) return false;
      }
    }
    return true;
  }

  std::unique_ptr<Chain> chain;
  std::unique_ptr<IciNetwork> net;
};

TEST(Reconfig, RestoresIntraClusterIntegrity) {
  Rig rig("random");  // random re-clustering forces a real migration
  ASSERT_TRUE(rig.integrity());

  const auto report = rig.net->reconfigure(/*epoch_seed=*/999);
  EXPECT_GT(report.nodes_moved, 0u);
  EXPECT_GT(report.copies_started, 0u);
  rig.net->settle();

  EXPECT_TRUE(rig.integrity()) << "every new cluster must hold the full ledger";
  // Every assigned storer holds its blocks.
  for (const auto& b : rig.net->committed()) {
    for (std::size_t c = 0; c < rig.net->directory().cluster_count(); ++c) {
      for (auto id : rig.net->storers_of(b.hash, b.height, c, false)) {
        EXPECT_TRUE(rig.net->node(id).store().has_block(b.hash))
            << "height " << b.height << " cluster " << c;
      }
    }
  }
}

TEST(Reconfig, PruneRestoresStorageFootprint) {
  Rig rig("random");
  const std::uint64_t before = rig.net->storage_snapshot().total_bytes;

  rig.net->reconfigure(999);
  rig.net->settle();
  const std::uint64_t during = rig.net->storage_snapshot().total_bytes;
  EXPECT_GT(during, before) << "migration temporarily over-replicates";

  const std::uint64_t freed = rig.net->prune_unassigned();
  EXPECT_GT(freed, 0u);
  const std::uint64_t after = rig.net->storage_snapshot().total_bytes;
  EXPECT_EQ(after, before) << "after prune, exactly k*r copies per block again";
  EXPECT_TRUE(rig.integrity());
}

TEST(Reconfig, KmeansReclusteringIsMoreStableThanRandom) {
  Rig kmeans_rig("kmeans");
  Rig random_rig("random");
  const auto km = kmeans_rig.net->reconfigure(7);
  const auto rd = random_rig.net->reconfigure(7);
  // Geometry anchors k-means: fewer members change cluster (label-invariant
  // count), so fewer blocks migrate.
  EXPECT_LT(km.nodes_moved, rd.nodes_moved);
  EXPECT_LT(km.copies_started, rd.copies_started);
  kmeans_rig.net->settle();
  random_rig.net->settle();
  EXPECT_TRUE(kmeans_rig.integrity());
  EXPECT_TRUE(random_rig.integrity());
}

TEST(Reconfig, NoopWhenClusteringUnchanged) {
  // Reconfiguring with the same seed reproduces the same partition: zero
  // movement, zero copies.
  Rig rig("kmeans");
  const auto report = rig.net->reconfigure(IciConfig{}.seed);
  EXPECT_EQ(report.nodes_moved, 0u);
  EXPECT_EQ(report.copies_started, 0u);
  EXPECT_EQ(rig.net->prune_unassigned(), 0u);
}

TEST(Reconfig, RejectedInCodedMode) {
  ChainGenConfig ccfg;
  ccfg.blocks = 2;
  const Chain chain = ChainGenerator(ccfg).generate();
  IciNetworkConfig cfg;
  cfg.node_count = 12;
  cfg.ici.cluster_count = 2;
  cfg.ici.erasure_data = 2;
  cfg.ici.erasure_parity = 1;
  IciNetwork net(cfg);
  net.init_with_genesis(chain.at_height(0));
  EXPECT_THROW(net.reconfigure(1), std::logic_error);
}

}  // namespace
}  // namespace ici::core
