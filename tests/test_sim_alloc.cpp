// Zero-allocation contract for the simulator core (mirror of the PR 3
// encode_message allocation test): on the steady-state network path,
// scheduling and dispatching an event must not touch the heap. The event's
// capture lives in InplaceEvent's inline buffer and the calendar queue
// recycles bucket capacity, so after warm-up the only per-message heap
// traffic left in a send→deliver round trip is zero. A counting global
// operator new (binary-wide; it just counts, then defers to malloc) pins
// that down instead of trusting the design comment.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "sim/event.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ici::sim {
namespace {

struct TestMsg final : MessageBase {
  std::size_t size;
  explicit TestMsg(std::size_t s) : size(s) {}
  [[nodiscard]] std::size_t wire_size() const override { return size; }
  [[nodiscard]] const char* type_name() const override { return "Test"; }
};

class Sink : public INode {
 public:
  void on_message(NodeId, const MessagePtr&) override { ++delivered; }
  std::size_t delivered = 0;
};

TEST(SimAlloc, SteadyStateSendScheduleDispatchIsAllocationFree) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.jitter_stddev_us = 500;  // keep the per-recipient RNG draw on the path
  Network net(sim, cfg);
  Sink sink;
  std::vector<NodeId> peers;
  const NodeId src = net.add_node(&sink, {0, 0});
  for (int i = 0; i < 8; ++i)
    peers.push_back(net.add_node(&sink, {static_cast<double>(i), 1.0}));
  const MessagePtr msg = std::make_shared<TestMsg>(4096);

  // Warm-up: the same fan-out + settle cycle repeated until the calendar
  // ring has fully rotated at least once (each round advances sim time by
  // ~19 ms ≈ 2-3 buckets; the ring is kBucketCount × kBucketWidthUs ≈ 4.2 s
  // wide), so every slot the measured round can land in already carries
  // recycled vector capacity.
  constexpr int kWarmRounds = 320;
  for (int round = 0; round < kWarmRounds; ++round) {
    net.multicast(src, peers, msg);
    sim.run();
  }

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  net.multicast(src, peers, msg);          // 8 scheduled delivery events
  net.send(src, peers[0], msg);            // lvalue single-send path
  net.send(src, peers[1], MessagePtr(msg));  // rvalue single-send path
  sim.run();                               // dispatch all 10
  const std::size_t during = g_alloc_count.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(during, 0u) << "steady-state schedule/dispatch must not allocate";
  EXPECT_EQ(sink.delivered, static_cast<std::size_t>(kWarmRounds) * 8u + 10u);
  EXPECT_EQ(sim.queue_stats().heap_fallback_events, 0u)
      << "a delivery closure outgrew InplaceEvent's inline buffer";
}

// The guard that makes the network result meaningful: a capture larger than
// the inline budget must still work, but is counted as a heap fallback.
TEST(SimAlloc, OversizedCapturesFallBackToHeapAndAreCounted) {
  Simulator sim;
  struct Big {
    char payload[InplaceEvent::kInlineCapacity + 8] = {};
  };
  Big big;
  bool fired = false;
  sim.after(1, [big, &fired] {
    (void)big;
    fired = true;
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.queue_stats().heap_fallback_events, 1u);
}

TEST(SimAlloc, InlineEventFitsDeliveryClosureShape) {
  // Compile-time guarantee that the delivery closure shape stays inline:
  // this + from + to + wire + shared_ptr is the largest hot-path capture.
  struct DeliveryShape {
    void* self;
    NodeId from, to;
    std::size_t wire;
    MessagePtr msg;
  };
  static_assert(sizeof(DeliveryShape) <= InplaceEvent::kInlineCapacity,
                "network delivery closure no longer fits the inline event buffer");
}

}  // namespace
}  // namespace ici::sim
