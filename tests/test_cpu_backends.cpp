// Cross-backend bit-identity: the SIMD kernels behind the cpu dispatch
// (SHA-NI compression, SSSE3/AVX2 GF(256) row ops) must produce byte-for-
// byte the same results as the portable scalar code — that is the whole
// determinism contract of docs/CPU_BACKENDS.md. Every test computes under
// Backend::kScalar and Backend::kNative and compares; on hardware without
// the SIMD features, native degrades to scalar and the comparison is
// trivially (but still correctly) satisfied.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cpudispatch.h"
#include "common/hex.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "erasure/gf256.h"

namespace ici {
namespace {

// Saves and restores the process-wide backend selection so these tests do
// not leak a forced tier into any other test in the binary.
class CpuBackendTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = cpu::backend(); }
  void TearDown() override { cpu::set_backend(saved_); }

 private:
  cpu::Backend saved_ = cpu::Backend::kNative;
};

using Sha256Backends = CpuBackendTest;
using Gf256Backends = CpuBackendTest;
using DispatchApi = CpuBackendTest;

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xff);
  }
  return b;
}

Digest256 digest_with(cpu::Backend backend, ByteSpan data) {
  cpu::set_backend(backend);
  return Sha256::hash(data);
}

TEST_F(Sha256Backends, BitIdenticalAcrossLengths) {
  // Lengths straddle every padding case: empty, sub-block, the 55/56
  // boundary (padding fits / spills into a second block), exactly one
  // block, and multi-block messages with every residue mod 64.
  const std::size_t lengths[] = {0,  1,  3,  31,  55,  56,  63,  64,  65,
                                 96, 127, 128, 129, 255, 256, 1000, 4096, 10000};
  for (const std::size_t n : lengths) {
    const Bytes data = pattern_bytes(n);
    const ByteSpan span(data.data(), data.size());
    const Digest256 scalar = digest_with(cpu::Backend::kScalar, span);
    const Digest256 native = digest_with(cpu::Backend::kNative, span);
    EXPECT_EQ(scalar, native) << "length " << n;
  }
}

TEST_F(Sha256Backends, BitIdenticalUnderStreamingSplits) {
  // The dispatch sits under Sha256::update, which mixes buffered partial
  // blocks with bulk multi-block compression — feed the same message in
  // every split position and require one digest.
  const Bytes data = pattern_bytes(300);
  cpu::set_backend(cpu::Backend::kScalar);
  const Digest256 want = Sha256::hash(ByteSpan(data.data(), data.size()));
  cpu::set_backend(cpu::Backend::kNative);
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(ByteSpan(data.data(), split));
    h.update(ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(h.final(), want) << "split " << split;
  }
}

TEST_F(Sha256Backends, NativeMatchesKnownVector) {
  // Guards against scalar and native being identically wrong: "abc" from
  // FIPS 180-4, checked under the native tier directly.
  cpu::set_backend(cpu::Backend::kNative);
  const Bytes abc = {'a', 'b', 'c'};
  const Digest256 d = Sha256::hash(ByteSpan(abc.data(), abc.size()));
  EXPECT_EQ(to_hex(ByteSpan(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_F(Gf256Backends, MulAddRowAllCoefficients) {
  // Every coefficient, with a length long enough to hit the 32-byte AVX2
  // loop, the 16-byte SSE loop, and a scalar tail at once.
  const std::size_t n = 67;
  const Bytes src = pattern_bytes(n);
  const Bytes base = pattern_bytes(n * 2);
  for (int c = 0; c < 256; ++c) {
    Bytes scalar_dst(base.begin(), base.begin() + static_cast<std::ptrdiff_t>(n));
    Bytes native_dst = scalar_dst;
    cpu::set_backend(cpu::Backend::kScalar);
    erasure::GF256::mul_add_row(scalar_dst.data(), src.data(), n,
                                static_cast<std::uint8_t>(c));
    cpu::set_backend(cpu::Backend::kNative);
    erasure::GF256::mul_add_row(native_dst.data(), src.data(), n,
                                static_cast<std::uint8_t>(c));
    ASSERT_EQ(scalar_dst, native_dst) << "coefficient " << c;
    // Cross-check against the definitional form.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_dst[i],
                static_cast<std::uint8_t>(
                    base[i] ^ erasure::GF256::mul(static_cast<std::uint8_t>(c), src[i])))
          << "coefficient " << c << " byte " << i;
    }
  }
}

TEST_F(Gf256Backends, MulRowIntoAllCoefficients) {
  const std::size_t n = 67;
  const Bytes src = pattern_bytes(n);
  for (int c = 0; c < 256; ++c) {
    Bytes scalar_dst(n, 0xaa);
    Bytes native_dst(n, 0x55);  // different fill: every byte must be written
    cpu::set_backend(cpu::Backend::kScalar);
    erasure::GF256::mul_row_into(scalar_dst.data(), src.data(), n,
                                 static_cast<std::uint8_t>(c));
    cpu::set_backend(cpu::Backend::kNative);
    erasure::GF256::mul_row_into(native_dst.data(), src.data(), n,
                                 static_cast<std::uint8_t>(c));
    ASSERT_EQ(scalar_dst, native_dst) << "coefficient " << c;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar_dst[i], erasure::GF256::mul(static_cast<std::uint8_t>(c), src[i]))
          << "coefficient " << c << " byte " << i;
    }
  }
}

TEST_F(Gf256Backends, RowOpsAtUnalignedLengths) {
  // Lengths 1..67 cover every vector-width remainder (0..31 mod 32) plus
  // pure-tail cases shorter than one vector.
  Rng rng(99);
  for (std::size_t n = 1; n <= 67; ++n) {
    const Bytes src = rng.bytes(n);
    const Bytes base = rng.bytes(n);
    const std::uint8_t c = static_cast<std::uint8_t>(n * 7 + 3);

    Bytes scalar_add = base;
    Bytes native_add = base;
    Bytes scalar_into(n, 0);
    Bytes native_into(n, 0);
    cpu::set_backend(cpu::Backend::kScalar);
    erasure::GF256::mul_add_row(scalar_add.data(), src.data(), n, c);
    erasure::GF256::mul_row_into(scalar_into.data(), src.data(), n, c);
    cpu::set_backend(cpu::Backend::kNative);
    erasure::GF256::mul_add_row(native_add.data(), src.data(), n, c);
    erasure::GF256::mul_row_into(native_into.data(), src.data(), n, c);
    ASSERT_EQ(scalar_add, native_add) << "mul_add_row length " << n;
    ASSERT_EQ(scalar_into, native_into) << "mul_row_into length " << n;
  }
}

TEST_F(DispatchApi, BackendNamesRoundTrip) {
  EXPECT_TRUE(cpu::set_backend_name("scalar"));
  EXPECT_EQ(cpu::backend(), cpu::Backend::kScalar);
  EXPECT_STREQ(cpu::backend_name(), "scalar");
  EXPECT_STREQ(cpu::sha256_backend_name(), "scalar");
  EXPECT_STREQ(cpu::gf256_backend_name(), "scalar");
  EXPECT_FALSE(cpu::sha256_native());
  EXPECT_EQ(cpu::gf256_native_level(), 0);

  EXPECT_TRUE(cpu::set_backend_name("native"));
  EXPECT_EQ(cpu::backend(), cpu::Backend::kNative);
  EXPECT_STREQ(cpu::backend_name(), "native");

  EXPECT_FALSE(cpu::set_backend_name("avx512"));
  EXPECT_FALSE(cpu::set_backend_name(""));
  EXPECT_EQ(cpu::backend(), cpu::Backend::kNative) << "invalid name must not change selection";
}

TEST_F(DispatchApi, NativeLabelsMatchProbedFeatures) {
  cpu::set_backend(cpu::Backend::kNative);
  const cpu::Features& f = cpu::features();
  EXPECT_EQ(cpu::sha256_native(), f.sha_ni);
  EXPECT_STREQ(cpu::sha256_backend_name(), f.sha_ni ? "sha-ni" : "scalar");
  if (f.avx2) {
    EXPECT_EQ(cpu::gf256_native_level(), 2);
    EXPECT_STREQ(cpu::gf256_backend_name(), "avx2");
  } else if (f.ssse3) {
    EXPECT_EQ(cpu::gf256_native_level(), 1);
    EXPECT_STREQ(cpu::gf256_backend_name(), "ssse3");
  } else {
    EXPECT_EQ(cpu::gf256_native_level(), 0);
    EXPECT_STREQ(cpu::gf256_backend_name(), "scalar");
  }
  // AVX2 implies SSSE3 on every real CPU; the probe must agree.
  if (f.avx2) EXPECT_TRUE(f.ssse3);
}

}  // namespace
}  // namespace ici
