#include "ici/bootstrap.h"

#include <gtest/gtest.h>

#include "chain/workload.h"

namespace ici::core {
namespace {

struct PreloadedNet {
  explicit PreloadedNet(std::size_t nodes = 20, std::size_t clusters = 2,
                        std::size_t blocks = 12) {
    ChainGenConfig ccfg;
    ccfg.blocks = blocks;
    ccfg.txs_per_block = 8;
    chain = std::make_unique<Chain>(ChainGenerator(ccfg).generate());

    IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    net = std::make_unique<IciNetwork>(ncfg);
    net->init_with_genesis(chain->at_height(0));
    net->preload_chain(*chain);
  }

  std::unique_ptr<Chain> chain;
  std::unique_ptr<IciNetwork> net;
};

TEST(Bootstrap, JoinerSyncsHeadersAndAssignedBodies) {
  PreloadedNet rig;
  const BootstrapReport report = Bootstrapper::join(*rig.net, {50, 50});
  EXPECT_TRUE(report.complete);

  const IciNode& joiner = rig.net->node(report.joiner);
  // All headers synced.
  EXPECT_EQ(joiner.store().header_count(), rig.chain->size());
  // Holds exactly the bodies assigned to it under the new membership.
  for (std::uint64_t h = 0; h <= rig.chain->height(); ++h) {
    const Hash256 hash = rig.chain->at_height(h).hash();
    const auto storers = rig.net->storers_of(hash, h, report.cluster, false);
    const bool assigned =
        std::find(storers.begin(), storers.end(), report.joiner) != storers.end();
    EXPECT_EQ(joiner.store().has_block(hash), assigned) << "height " << h;
  }
  EXPECT_EQ(joiner.store().block_count(), report.bodies_fetched);
}

TEST(Bootstrap, DownloadsFractionOfChain) {
  PreloadedNet rig(20, 2, 20);
  const BootstrapReport report = Bootstrapper::join(*rig.net, {10, 10});
  ASSERT_TRUE(report.complete);
  // A cluster of ~10 members: the joiner should download roughly 1/10 of the
  // ledger, far below the full chain a full-replication joiner pulls.
  EXPECT_LT(report.bytes_downloaded, rig.chain->total_bytes() / 2);
  EXPECT_GT(report.bytes_downloaded, 0u);
  EXPECT_GT(report.elapsed_us, 0u);
}

TEST(Bootstrap, JoinerPicksNearestCluster) {
  PreloadedNet rig(30, 3, 4);
  const BootstrapReport report = Bootstrapper::join(*rig.net, {0, 0});
  // The chosen cluster must be the arg-min of mean member distance.
  auto& dir = rig.net->directory();
  double chosen_mean = 0, best = 1e18;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    double total = 0;
    std::size_t count = 0;
    for (auto id : dir.members(c)) {
      if (id == report.joiner) continue;  // exclude the joiner itself
      total += sim::distance({0, 0}, dir.info(id).coord);
      ++count;
    }
    const double mean = total / static_cast<double>(count);
    if (c == report.cluster) chosen_mean = mean;
    if (mean < best) {
      best = mean;
      best_c = c;
    }
  }
  EXPECT_EQ(report.cluster, best_c);
  EXPECT_DOUBLE_EQ(chosen_mean, best);
}

TEST(Bootstrap, JoinerServesFetchesAfterJoin) {
  PreloadedNet rig;
  const BootstrapReport report = Bootstrapper::join(*rig.net, {50, 50});
  ASSERT_TRUE(report.complete);
  ASSERT_GT(report.bodies_fetched, 0u);

  // A block now assigned to the joiner can be fetched by a cluster peer.
  Hash256 target;
  std::uint64_t target_height = 0;
  for (std::uint64_t h = 0; h <= rig.chain->height(); ++h) {
    const Hash256 hash = rig.chain->at_height(h).hash();
    const auto storers = rig.net->storers_of(hash, h, report.cluster, false);
    if (storers[0] == report.joiner) {
      target = hash;
      target_height = h;
      break;
    }
  }
  if (target.is_zero()) GTEST_SKIP() << "joiner not primary for any block";

  cluster::NodeId peer = cluster::kNoNode;
  for (auto id : rig.net->directory().members(report.cluster)) {
    if (id != report.joiner && !rig.net->node(id).store().has_block(target)) {
      peer = id;
      break;
    }
  }
  ASSERT_NE(peer, cluster::kNoNode);
  bool got = false;
  rig.net->node(peer).fetch_block(target, target_height, [&](const FetchResult& r) {
    got = r.block != nullptr && r.block->hash() == target;
  });
  rig.net->settle();
  EXPECT_TRUE(got);
}

TEST(Bootstrap, MultipleJoinersSucceed) {
  PreloadedNet rig;
  const BootstrapReport r1 = Bootstrapper::join(*rig.net, {20, 20});
  const BootstrapReport r2 = Bootstrapper::join(*rig.net, {80, 80});
  EXPECT_TRUE(r1.complete);
  EXPECT_TRUE(r2.complete);
  EXPECT_NE(r1.joiner, r2.joiner);
}

}  // namespace
}  // namespace ici::core
