#include "crypto/hash.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ici {
namespace {

TEST(Hash256, DefaultIsZero) {
  Hash256 h;
  EXPECT_TRUE(h.is_zero());
  EXPECT_EQ(h.low64(), 0u);
}

TEST(Hash256, OfIsNotZero) {
  const Bytes data = {1, 2, 3};
  EXPECT_FALSE(Hash256::of(ByteSpan(data.data(), data.size())).is_zero());
}

TEST(Hash256, HexRoundTrip) {
  const Bytes data = {42};
  const Hash256 h = Hash256::of(ByteSpan(data.data(), data.size()));
  EXPECT_EQ(Hash256::from_hex(h.hex()), h);
  EXPECT_EQ(h.hex().size(), 64u);
  EXPECT_EQ(h.short_hex(), h.hex().substr(0, 8));
}

TEST(Hash256, FromHexRejectsWrongLength) {
  EXPECT_THROW((void)Hash256::from_hex("abcd"), DecodeError);
}

TEST(Hash256, TaggedSeparatesDomains) {
  const Bytes data = {9, 9, 9};
  const ByteSpan span(data.data(), data.size());
  EXPECT_NE(Hash256::tagged("a", span), Hash256::tagged("b", span));
  EXPECT_NE(Hash256::tagged("a", span), Hash256::of(span));
}

TEST(Hash256, TaggedIsDeterministic) {
  const Bytes data = {1};
  const ByteSpan span(data.data(), data.size());
  EXPECT_EQ(Hash256::tagged("t", span), Hash256::tagged("t", span));
}

TEST(Hash256, OrderingIsTotal) {
  const Bytes a = {1}, b = {2};
  const Hash256 ha = Hash256::of(ByteSpan(a.data(), a.size()));
  const Hash256 hb = Hash256::of(ByteSpan(b.data(), b.size()));
  EXPECT_TRUE((ha < hb) != (hb < ha));
  EXPECT_TRUE(ha == ha);
}

TEST(Hash256, HasherDistributes) {
  std::unordered_set<std::size_t> buckets;
  Hash256Hasher hasher;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ByteWriter w;
    w.u64(i);
    buckets.insert(hasher(Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()))));
  }
  EXPECT_EQ(buckets.size(), 100u);  // no collisions at this tiny scale
}

TEST(Hash256, Low64MatchesFirstEightBytes) {
  const Bytes data = {5};
  const Hash256 h = Hash256::of(ByteSpan(data.data(), data.size()));
  std::uint64_t manual = 0;
  for (int i = 0; i < 8; ++i) manual |= static_cast<std::uint64_t>(h.bytes()[i]) << (8 * i);
  EXPECT_EQ(h.low64(), manual);
}

}  // namespace
}  // namespace ici
