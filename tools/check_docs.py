#!/usr/bin/env python3
"""Validate the repository's markdown documentation.

Two checks, stdlib only — wired into CTest as `docs_check` (label `docs`):

1. **Intra-repo links.** Every relative `[text](target)` in every tracked
   .md file must point at a file that exists; `file#anchor` (and bare
   `#anchor`) targets must match a heading in the target file under
   GitHub's slug rules. External links (http/https/mailto) are skipped —
   the suite must not depend on the network.

2. **Flag tables.** The README documents `tools/icisim`'s flags in a
   table; those tables rot silently when flags are added or renamed.
   With --icisim pointing at the built binary, the documented flag set
   is compared against what `--help` actually prints, both directions.

    $ python3 tools/check_docs.py --repo-root . --icisim build/tools/icisim

Exit status: 0 = docs clean, 1 = validation failure, 2 = usage error.
"""

import argparse
import os
import re
import subprocess
import sys

# Directories never scanned for markdown (build trees, VCS internals).
SKIP_DIRS = {".git", ".claude", "third_party"}
SKIP_DIR_PREFIXES = ("build",)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")
HELP_FLAG_RE = re.compile(r"^\s{2}(--[a-z][a-z0-9-]*)\b")
TABLE_FLAG_RE = re.compile(r"`(--[a-z][a-z0-9-]*)`")


def find_markdown_files(root):
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_DIR_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def strip_code(text):
    """Drops fenced code blocks and inline code spans; keeps line count."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else re.sub(r"`[^`]*`", "``", line))
    return "\n".join(out)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)          # formatting markers
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links -> text
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path, cache):
    if path not in cache:
        slugs = set()
        counts = {}
        with open(path, "r", encoding="utf-8") as handle:
            body = strip_code(handle.read())
        for line in body.splitlines():
            match = HEADING_RE.match(line)
            if not match:
                continue
            slug = github_slug(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_links(root, files):
    errors = []
    anchor_cache = {}
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            body = strip_code(handle.read())
        for lineno, line in enumerate(body.splitlines(), start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                file_part, _, anchor = target.partition("#")
                if file_part:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), file_part))
                    if not dest.startswith(os.path.abspath(root)):
                        errors.append(f"{rel}:{lineno}: link escapes the "
                                      f"repository: {target}")
                        continue
                    if not os.path.exists(dest):
                        errors.append(f"{rel}:{lineno}: broken link: {target}")
                        continue
                else:
                    dest = path
                if anchor and dest.endswith(".md"):
                    if anchor not in anchors_of(dest, anchor_cache):
                        errors.append(f"{rel}:{lineno}: no heading for "
                                      f"anchor: {target}")
    return errors


def documented_icisim_flags(root):
    """Flags named in the README's `tools/icisim` flag table."""
    readme = os.path.join(root, "README.md")
    flags = set()
    in_table = False
    with open(readme, "r", encoding="utf-8") as handle:
        for line in handle:
            if "`tools/icisim` flags" in line:
                in_table = True
                continue
            if in_table:
                if line.startswith("|"):
                    flags.update(TABLE_FLAG_RE.findall(line.split("|")[1]))
                elif flags and line.strip() and not line.startswith("|"):
                    break
    return flags


def check_flag_table(root, icisim):
    try:
        out = subprocess.run([icisim, "--help"], capture_output=True,
                             text=True, timeout=60).stdout
    except OSError as exc:
        return [f"cannot run {icisim} --help: {exc}"]
    actual = {m.group(1) for line in out.splitlines()
              if (m := HELP_FLAG_RE.match(line))}
    actual.discard("--help")
    documented = documented_icisim_flags(root)
    if not documented:
        return ["README.md: could not locate the `tools/icisim` flag table"]
    errors = []
    for flag in sorted(actual - documented):
        errors.append(f"README.md: icisim flag {flag} is missing from the "
                      "flag table")
    for flag in sorted(documented - actual):
        errors.append(f"README.md: flag table documents {flag}, which "
                      "icisim --help does not list")
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Validate intra-repo markdown links and flag tables.")
    parser.add_argument("--repo-root", default=".",
                        help="repository root to scan (default: .)")
    parser.add_argument("--icisim", default="",
                        help="path to the built icisim binary; enables the "
                             "flag-table check")
    args = parser.parse_args()

    root = os.path.abspath(args.repo_root)
    if not os.path.isdir(root):
        print(f"error: no such directory: {root}", file=sys.stderr)
        sys.exit(2)

    files = find_markdown_files(root)
    if not files:
        print(f"error: no markdown files under {root}", file=sys.stderr)
        sys.exit(2)

    errors = check_links(root, files)
    if args.icisim:
        errors += check_flag_table(root, args.icisim)

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"checked {len(files)} markdown file(s)"
          + (", icisim flag table consistent" if args.icisim else ""))


if __name__ == "__main__":
    main()
