// icisim — configurable ICIStrategy scenario runner.
//
//   $ ./build/tools/icisim --nodes 120 --clusters 6 --blocks 20 --churn
//   $ ./build/tools/icisim --erasure-data 8 --erasure-parity 2 --minutes 20
//   $ ./build/tools/icisim --fault-plan seed=7,crash=0.3,drop=0.1
//   $ ./build/tools/icisim --smoke          # tiny config, same output shape
//   $ ./build/tools/icisim --help
//
// Builds a network from command-line parameters, disseminates a workload,
// optionally runs churn, and prints a one-page report: storage, traffic,
// commit latency, availability, and protocol counters. The scriptable front
// door to everything the examples demonstrate one piece at a time. Every
// run also writes BENCH_icisim.json (ici-bench-v1 schema, see
// docs/OBSERVABILITY.md) with the config, metric rows, protocol counters,
// and span aggregates.
#include <algorithm>
#include <iostream>

#include "chain/workload.h"
#include "common/cpudispatch.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ici/bootstrap.h"
#include "ici/network.h"
#include "metrics/memstats.h"
#include "obs/bench_report.h"
#include "sim/faults.h"
#include "sim/shard.h"

int main(int argc, char** argv) {
  using namespace ici;

  std::uint64_t nodes = 60;
  std::uint64_t clusters = 4;
  std::uint64_t replication = 1;
  std::uint64_t erasure_data = 0;
  std::uint64_t erasure_parity = 0;
  std::uint64_t blocks = 15;
  std::uint64_t txs = 40;
  std::uint64_t minutes = 20;
  double churn_fraction = 0.3;
  bool churn = false;
  bool sync_join = false;
  std::uint64_t sync_range = 16;
  std::uint64_t sync_window = 2;
  std::uint64_t sync_peers = 4;
  double sync_serve_rate = 0.0;
  std::string clustering = "kmeans";
  BenchOptions opts;

  FlagParser flags("icisim", "ICIStrategy network scenario runner");
  flags.add_uint("nodes", &nodes, "number of participants");
  flags.add_uint("clusters", &clusters, "number of clusters k");
  flags.add_uint("replication", &replication, "intra-cluster replication r");
  flags.add_uint("erasure-data", &erasure_data, "RS data shards d (0 = replication mode)");
  flags.add_uint("erasure-parity", &erasure_parity, "RS parity shards p");
  flags.add_uint("blocks", &blocks, "blocks to disseminate");
  flags.add_uint("txs", &txs, "transactions per block");
  flags.add_string("clustering", &clustering, "kmeans | random | grid");
  flags.add_bool("churn", &churn, "run churn after dissemination");
  flags.add_double("churn-fraction", &churn_fraction, "fraction of nodes that churn");
  flags.add_uint("minutes", &minutes, "simulated minutes of churn/faults");
  flags.add_bool("sync-join", &sync_join,
                 "bootstrap one extra node via streaming bulk-sync at the end");
  flags.add_uint("sync-range", &sync_range, "bulk-sync blocks per range request");
  flags.add_uint("sync-window", &sync_window, "bulk-sync in-flight requests per peer");
  flags.add_uint("sync-peers", &sync_peers, "bulk-sync parallel pull peers");
  flags.add_double("sync-serve-rate", &sync_serve_rate,
                   "serve-side bulk-sync rate limit in bytes/s of sim time (0 = off)");
  add_bench_flags(flags, &opts);  // --smoke/--threads/--cpu/--seed/--fault-plan/--shards

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    if (!error.empty()) std::cerr << "error: " << error << "\n\n";
    std::cout << flags.usage();
    return error.empty() ? 0 : 2;
  }
  apply_bench_options(opts, "icisim");
  sim::set_default_shards(std::max<std::uint64_t>(1, opts.shards));

  sim::FaultPlan fault_plan;
  if (!sim::FaultPlan::parse(opts.fault_plan, &fault_plan, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const bool faults = fault_plan.enabled();

  const std::uint64_t seed = opts.seed;
  const bool smoke = opts.smoke;
  if (smoke) {
    nodes = 24;
    clusters = 2;
    blocks = 4;
    txs = 20;
    minutes = 2;
  }

  ChainGenConfig chain_cfg;
  chain_cfg.txs_per_block = txs;
  chain_cfg.workload.seed = seed;
  ChainGenerator generator(chain_cfg);

  core::IciNetworkConfig net_cfg;
  net_cfg.node_count = nodes;
  net_cfg.ici.cluster_count = clusters;
  net_cfg.ici.replication = replication;
  net_cfg.ici.erasure_data = erasure_data;
  net_cfg.ici.erasure_parity = erasure_parity;
  net_cfg.ici.clustering = clustering;
  net_cfg.seed = seed;
  net_cfg.sync_serve_rate_bps = sync_serve_rate;
  net_cfg.store.backend = opts.store;
  net_cfg.store.io_write_us = opts.io_write_us;
  net_cfg.store.io_read_us = opts.io_read_us;

  std::unique_ptr<core::IciNetwork> network;
  try {
    network = std::make_unique<core::IciNetwork>(net_cfg);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  obs::BenchReport report("icisim", seed);
  report.set_smoke(smoke);
  report.set_config("nodes", nodes);
  report.set_config("clusters", clusters);
  report.set_config("replication", replication);
  report.set_config("erasure_data", erasure_data);
  report.set_config("erasure_parity", erasure_parity);
  report.set_config("blocks", blocks);
  report.set_config("txs_per_block", txs);
  report.set_config("clustering", clustering);
  report.set_config("threads", ThreadPool::global().thread_count());
  report.set_config("cpu_backend", std::string(cpu::backend_name()));
  report.set_config("shards", sim::default_shards());
  report.set_config("store_backend", opts.store);
  if (sync_serve_rate > 0.0) report.set_config("sync_serve_rate_bps", sync_serve_rate);
  report.set_config("churn", churn);
  if (churn) report.set_config("churn_fraction", churn_fraction);
  if (faults) report.set_config("fault_plan", fault_plan.describe());
  if (churn || faults) report.set_config("sim_minutes", minutes);
  if (sync_join) {
    report.set_config("sync_range", sync_range);
    report.set_config("sync_window", sync_window);
    report.set_config("sync_peers", sync_peers);
  }

  Block genesis = generator.workload().make_genesis();
  generator.workload().confirm(genesis);
  Chain chain(genesis);
  network->init_with_genesis(genesis);

  Histogram commit_latency;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    chain.append(generator.next_block(chain));
    const sim::SimTime t = network->disseminate_and_settle(chain.tip());
    if (t > 0) commit_latency.add(static_cast<double>(t));
  }

  // Faults (like churn) start after dissemination: their recurring
  // crash/restart schedules keep the event queue populated forever, so the
  // run advances in bounded windows from here on (never settle()).
  RunningStat availability;
  if (churn) {
    sim::ChurnConfig ccfg;
    ccfg.churn_fraction = churn_fraction;
    ccfg.seed = seed;
    network->start_churn(ccfg);
  }
  if (faults) network->start_faults(fault_plan);
  if (churn || faults) {
    for (std::uint64_t minute = 0; minute < minutes; ++minute) {
      network->run_for(60'000'000);
      availability.add(network->availability());
    }
  }

  const auto snap = network->storage_snapshot();
  const auto traffic = network->network().total_traffic();

  std::cout << "=== icisim report ===\n";
  Table setup({"parameter", "value"});
  setup.row({"nodes", std::to_string(nodes)});
  setup.row({"clusters (k)", std::to_string(clusters)});
  setup.row({"cluster size (m)", std::to_string(nodes / clusters)});
  setup.row({"redundancy", erasure_data > 0 ? "RS(" + std::to_string(erasure_data) + "," +
                                                  std::to_string(erasure_parity) + ")"
                                            : "r=" + std::to_string(replication)});
  setup.row({"clustering", clustering});
  setup.row({"ledger", format_bytes(static_cast<double>(chain.total_bytes()))});
  setup.print(std::cout);

  std::cout << "\n";
  Table results({"metric", "value"});
  results.row({"blocks committed", std::to_string(commit_latency.count()) + "/" +
                                       std::to_string(blocks)});
  results.row({"commit latency p50", format_double(commit_latency.p50() / 1000, 1) + " ms"});
  results.row({"commit latency p99", format_double(commit_latency.p99() / 1000, 1) + " ms"});
  results.row({"storage mean/node", format_bytes(snap.mean_bytes)});
  results.row({"storage max/node", format_bytes(snap.max_bytes)});
  const double vs_full = snap.mean_bytes / static_cast<double>(chain.total_bytes()) * 100;
  results.row({"vs full replication", format_double(vs_full, 1) + "%"});
  results.row({"traffic total", format_bytes(static_cast<double>(traffic.bytes_sent))});
  results.row({"messages", std::to_string(traffic.msgs_sent)});
  if (churn || faults) {
    results.row({"availability (mean)", format_double(availability.mean(), 4)});
    results.row({"availability (min)", format_double(availability.min(), 4)});
  }
  results.print(std::cout);

  // Optional join probe: bootstrap one fresh node through the streaming
  // bulk-sync protocol (docs/BOOTSTRAP.md) against the network as-is —
  // after churn/faults, so the join sees whatever the run left standing.
  if (sync_join) {
    sync::SyncConfig scfg;
    scfg.range_blocks = static_cast<std::uint32_t>(sync_range);
    scfg.per_peer_window = static_cast<std::uint32_t>(sync_window);
    scfg.max_peers = static_cast<std::uint32_t>(sync_peers);
    const auto join = core::Bootstrapper::join(*network, {50, 50}, scfg);

    std::cout << "\nBulk-sync join:\n";
    Table jt({"metric", "value"});
    jt.row({"synced", join.complete ? "yes" : "NO"});
    jt.row({"time to synced", format_double(
                static_cast<double>(join.sync.time_to_synced_us) / 1000, 1) + " ms"});
    jt.row({"bytes downloaded", format_bytes(static_cast<double>(join.bytes_downloaded))});
    jt.row({"peers used", std::to_string(join.sync.peers_used)});
    jt.row({"ranges", std::to_string(join.sync.ranges_committed) + " (+" +
                          std::to_string(join.sync.ranges_retried) + " retried)"});
    jt.row({"bodies fetched", std::to_string(join.bodies_fetched)});
    jt.print(std::cout);

    auto& jrow = report.add_row("sync_join");
    jrow.set("complete", join.complete);
    jrow.set("time_to_synced_us", join.sync.time_to_synced_us);
    jrow.set("frontier_us", join.sync.frontier_us);
    jrow.set("bytes_downloaded", join.bytes_downloaded);
    jrow.set("header_payload_bytes", join.sync.header_payload_bytes);
    jrow.set("body_payload_bytes", join.sync.body_payload_bytes);
    jrow.set("peers_used", join.sync.peers_used);
    jrow.set("ranges_committed", join.sync.ranges_committed);
    jrow.set("ranges_retried", join.sync.ranges_retried);
    jrow.set("resumes", join.sync.resume_count);
  }

  std::cout << "\nProtocol counters:\n";
  for (const auto& [name, counter] : network->metrics().counters()) {
    std::cout << "  " << name << " = " << counter.value() << "\n";
  }

  auto& row = report.add_row("run");
  row.set("blocks_committed", commit_latency.count());
  row.set("commit_p50_us", commit_latency.p50());
  row.set("commit_p99_us", commit_latency.p99());
  row.set("ledger_bytes", chain.total_bytes());
  row.set("storage_mean_bytes", snap.mean_bytes);
  row.set("storage_max_bytes", snap.max_bytes);
  row.set("vs_fullrep_pct", vs_full);
  row.set("traffic_bytes", traffic.bytes_sent);
  row.set("traffic_msgs", traffic.msgs_sent);
  if (churn || faults) {
    row.set("availability_mean", availability.mean());
    row.set("availability_min", availability.min());
  }
  report.capture_registry(network->metrics());
  // Memory footprint of the run (environment measurement, not part of the
  // deterministic sim.* counters; see docs/MEMORY.md).
  const metrics::MemoryStats mem = metrics::read_memory_stats();
  if (mem.peak_rss_bytes != 0) {
    report.add_counter("sim.rss_bytes", mem.rss_bytes);
    report.add_counter("sim.peak_rss_bytes", mem.peak_rss_bytes);
    report.add_counter("sim.bytes_per_node", mem.peak_rss_bytes / nodes);
  }
  report.capture_spans();
  try {
    const std::string path = report.write();
    std::cout << "\nwrote " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
