#!/usr/bin/env python3
"""Validate BENCH_*.json files against the ici-bench-v1 schema.

Stdlib only — meant to run from CTest (the bench_json_schema test) or by
hand after regenerating benchmark output:

    $ python3 tools/check_bench_json.py build/bench_json
    $ python3 tools/check_bench_json.py --require-spans verify/slice,encode/rs FILE...

Arguments may be individual .json files or directories (scanned for
BENCH_*.json, non-recursive). --require-spans takes a comma-separated list
of span labels that must appear, with a non-empty aggregate, in the UNION
of all validated files (no single experiment exercises every phase).

Exit status: 0 = all files valid, 1 = validation failure, 2 = usage error.
"""

import argparse
import json
import os
import sys

SCHEMA = "ici-bench-v1"
SUMMARY_KEYS = {"count", "total", "p50", "p99"}


class ValidationError(Exception):
    pass


def fail(path, message):
    raise ValidationError(f"{path}: {message}")


def check_summary(path, where, obj):
    """A DistributionSummary: {count, total, p50, p99}, all numbers."""
    if not isinstance(obj, dict):
        fail(path, f"{where}: expected object, got {type(obj).__name__}")
    if set(obj.keys()) != SUMMARY_KEYS:
        fail(path, f"{where}: keys {sorted(obj.keys())} != {sorted(SUMMARY_KEYS)}")
    for key, value in obj.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(path, f"{where}.{key}: expected number, got {type(value).__name__}")
    if not isinstance(obj["count"], int) or obj["count"] < 0:
        fail(path, f"{where}.count: expected non-negative integer")


def check_file(path):
    """Validate one report; returns the set of span labels with samples."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            fail(path, f"invalid JSON: {exc}")

    if not isinstance(doc, dict):
        fail(path, "top level must be an object")

    for key, expected in (
        ("schema", str),
        ("name", str),
        ("seed", int),
        ("smoke", bool),
        ("config", dict),
        ("rows", list),
        ("counters", dict),
        ("distributions", dict),
        ("spans", list),
    ):
        if key not in doc:
            fail(path, f"missing required key '{key}'")
        if not isinstance(doc[key], expected):
            fail(path, f"'{key}': expected {expected.__name__}, "
                       f"got {type(doc[key]).__name__}")

    if doc["schema"] != SCHEMA:
        fail(path, f"schema '{doc['schema']}' != '{SCHEMA}'")
    if not doc["name"]:
        fail(path, "'name' must be non-empty")
    # Every artifact must record the worker-pool size it ran with (PR 2);
    # wall-clock numbers are meaningless without it.
    threads = doc["config"].get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        fail(path, "config.threads: expected integer >= 1 "
                   f"(got {threads!r})")
    # ... and the SIMD dispatch tier (PR 3): scalar vs native only moves
    # wall clock, but comparing timing artifacts requires knowing which ran.
    cpu_backend = doc["config"].get("cpu_backend")
    if cpu_backend not in ("scalar", "native"):
        fail(path, "config.cpu_backend: expected 'scalar' or 'native' "
                   f"(got {cpu_backend!r})")
    # ... and the event-shard count (PR 8): sim metrics are bit-identical
    # for any value, but wall-clock comparisons need to know how many lanes
    # the engine ran.
    shards = doc["config"].get("shards")
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        fail(path, f"config.shards: expected integer >= 1 (got {shards!r})")
    # ... and the storage backend (PR 10): mem and disk runs are
    # metric-identical by design, so the artifact has to say which one
    # produced it.
    store_backend = doc["config"].get("store_backend")
    if store_backend not in ("mem", "disk"):
        fail(path, "config.store_backend: expected 'mem' or 'disk' "
                   f"(got {store_backend!r})")
    expected_file = f"BENCH_{doc['name']}.json"
    if os.path.basename(path) != expected_file:
        fail(path, f"filename should be {expected_file} for name '{doc['name']}'")

    for i, row in enumerate(doc["rows"]):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            fail(path, f"{where}: expected object")
        if not isinstance(row.get("label"), str) or not row["label"]:
            fail(path, f"{where}: missing non-empty 'label'")
        if not isinstance(row.get("values"), dict):
            fail(path, f"{where}: missing 'values' object")
        for key, value in row["values"].items():
            if not isinstance(value, (bool, int, float, str)) and value is not None:
                fail(path, f"{where}.values['{key}']: scalar expected, "
                           f"got {type(value).__name__}")

    # exp19 (sim-core throughput) carries a scale sweep: the artifact must
    # say what headline node count it ran (config.nodes) and every row —
    # microbench and sweep alike — must report a positive events_per_sec,
    # or the scaling claim in EXPERIMENTS.md has nothing backing it.
    if doc["name"] == "exp19_simcore":
        nodes = doc["config"].get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            fail(path, f"config.nodes: expected integer >= 1 (got {nodes!r})")
        for i, row in enumerate(doc["rows"]):
            eps = row["values"].get("events_per_sec")
            if not isinstance(eps, (int, float)) or isinstance(eps, bool) or eps <= 0:
                fail(path, f"rows[{i}].values['events_per_sec']: expected "
                           f"positive number (got {eps!r})")

    # exp20 (fault injection) rows are one (churn, drop, strategy) cell each:
    # the artifact must say how many nodes the sweep ran (config.nodes), and
    # every row must name its strategy and carry in-range fault rates and
    # availability fractions, or the availability-under-churn claim in
    # EXPERIMENTS.md has nothing backing it.
    if doc["name"] == "exp20_faults":
        nodes = doc["config"].get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            fail(path, f"config.nodes: expected integer >= 1 (got {nodes!r})")
        for i, row in enumerate(doc["rows"]):
            values = row["values"]
            strategy = values.get("strategy")
            if not isinstance(strategy, str) or not strategy:
                fail(path, f"rows[{i}].values['strategy']: expected non-empty "
                           f"string (got {strategy!r})")
            for key in ("churn", "drop", "avail_mean", "avail_min"):
                v = values.get(key)
                if (not isinstance(v, (int, float)) or isinstance(v, bool)
                        or not 0.0 <= v <= 1.0):
                    fail(path, f"rows[{i}].values['{key}']: expected number "
                               f"in [0, 1] (got {v!r})")

    # exp21 (flattened-node-state scale sweep) re-verifies the headline ratio
    # at 10k-100k nodes: the artifact must say what headline scale it ran
    # (config.nodes) and each tier row must carry a positive measured ratio
    # and an in-range availability, or the "still ~25% at 100k" claim in
    # EXPERIMENTS.md has nothing backing it.
    if doc["name"] == "exp21_scale":
        nodes = doc["config"].get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            fail(path, f"config.nodes: expected integer >= 1 (got {nodes!r})")
        for i, row in enumerate(doc["rows"]):
            values = row["values"]
            n = values.get("nodes")
            if not isinstance(n, int) or isinstance(n, bool) or n < 1:
                fail(path, f"rows[{i}].values['nodes']: expected integer >= 1 "
                           f"(got {n!r})")
            ratio = values.get("measured_ici_vs_rc_pct")
            if (not isinstance(ratio, (int, float)) or isinstance(ratio, bool)
                    or ratio <= 0):
                fail(path, f"rows[{i}].values['measured_ici_vs_rc_pct']: expected "
                           f"positive number (got {ratio!r})")
            avail = values.get("availability")
            if (not isinstance(avail, (int, float)) or isinstance(avail, bool)
                    or not 0.0 <= avail <= 1.0):
                fail(path, f"rows[{i}].values['availability']: expected number "
                           f"in [0, 1] (got {avail!r})")

    # exp05 (bootstrap cost) went protocol-based with the streaming bulk
    # sync (docs/BOOTSTRAP.md): every row must be a measured, completed join
    # carrying the protocol detail, or the "greatly saves bootstrapping"
    # claim is back to closed-form arithmetic.
    if doc["name"] == "exp05_bootstrap":
        for i, row in enumerate(doc["rows"]):
            values = row["values"]
            if values.get("protocol") is not True:
                fail(path, f"rows[{i}].values['protocol']: expected True "
                           f"(got {values.get('protocol')!r})")
            if values.get("complete") is not True:
                fail(path, f"rows[{i}].values['complete']: expected True "
                           f"(got {values.get('complete')!r})")
            for key in ("bytes_downloaded", "peers_used", "ranges_committed"):
                v = values.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                    fail(path, f"rows[{i}].values['{key}']: expected integer "
                               f">= 1 (got {v!r})")

    # exp22 (bulk-sync under fault plans): rows are one (height, plan) cell.
    # Every join must complete; crash-plan rows must have resumed at least
    # once AND landed in the same verified state as the clean run, or the
    # checkpoint/resume guarantee has nothing backing it. Full runs must
    # sweep >= 3 chain heights and >= 2 fault plans.
    if doc["name"] == "exp22_sync":
        nodes = doc["config"].get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 1:
            fail(path, f"config.nodes: expected integer >= 1 (got {nodes!r})")
        heights, plans = set(), set()
        for i, row in enumerate(doc["rows"]):
            values = row["values"]
            plan = values.get("plan")
            if not isinstance(plan, str) or not plan:
                fail(path, f"rows[{i}].values['plan']: expected non-empty "
                           f"string (got {plan!r})")
            plans.add(plan)
            heights.add(values.get("blocks"))
            if values.get("complete") is not True:
                fail(path, f"rows[{i}].values['complete']: expected True "
                           f"(got {values.get('complete')!r})")
            for key in ("time_to_synced_us", "bytes_downloaded", "peers_used",
                        "ranges_committed"):
                v = values.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                    fail(path, f"rows[{i}].values['{key}']: expected integer "
                               f">= 1 (got {v!r})")
            for key in ("ranges_retried", "resumes", "header_payload_bytes",
                        "body_payload_bytes", "peer_bytes_max", "peer_bytes_min"):
                v = values.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    fail(path, f"rows[{i}].values['{key}']: expected integer "
                               f">= 0 (got {v!r})")
            if plan == "crash":
                if not isinstance(values.get("resumes"), int) or values["resumes"] < 1:
                    fail(path, f"rows[{i}]: crash-plan row must have resumes >= 1 "
                               f"(got {values.get('resumes')!r})")
                if values.get("resumed_matches_clean") is not True:
                    fail(path, f"rows[{i}]: crash-resumed state must match the "
                               "clean run (resumed_matches_clean)")
        if not doc["smoke"]:
            if len(heights) < 3:
                fail(path, f"full runs must sweep >= 3 chain heights "
                           f"(got {sorted(heights)})")
            if len(plans) < 2:
                fail(path, f"full runs must sweep >= 2 fault plans "
                           f"(got {sorted(plans)})")
        for name in ("sync.joins_completed", "sync.ranges_committed",
                     "sync.bodies_committed"):
            v = doc["counters"].get(name)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                fail(path, f"counters['{name}']: expected integer >= 1 "
                           f"(got {v!r})")
        for name in ("sync.time_to_synced_us", "sync.bytes_per_peer"):
            if name not in doc["distributions"]:
                fail(path, f"distributions: missing '{name}'")

    # exp23 (transaction ingestion): the artifact must say what offered load,
    # mempool bound, and user population it ran (config.tx_rate /
    # config.mempool_cap / config.users / config.nodes), every per-rate row
    # must name its strategy and carry the throughput/latency measurements,
    # and the aggregated ingest.* counter block must be present — or the
    # sustained-tx/s-at-saturation claim in EXPERIMENTS.md has nothing
    # backing it.
    if doc["name"] == "exp23_ingest":
        tx_rate = doc["config"].get("tx_rate")
        if (not isinstance(tx_rate, (int, float)) or isinstance(tx_rate, bool)
                or tx_rate <= 0):
            fail(path, f"config.tx_rate: expected positive number (got {tx_rate!r})")
        for key in ("mempool_cap", "users", "nodes"):
            v = doc["config"].get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                fail(path, f"config.{key}: expected integer >= 1 (got {v!r})")
        for i, row in enumerate(doc["rows"]):
            if not row["label"].startswith("rate="):
                continue
            values = row["values"]
            strategy = values.get("strategy")
            if not isinstance(strategy, str) or not strategy:
                fail(path, f"rows[{i}].values['strategy']: expected non-empty "
                           f"string (got {strategy!r})")
            for key in ("offered_tps", "sustained_tps"):
                v = values.get(key)
                if (not isinstance(v, (int, float)) or isinstance(v, bool)
                        or v <= 0):
                    fail(path, f"rows[{i}].values['{key}']: expected positive "
                               f"number (got {v!r})")
            for key in ("submit_commit_p50_us", "submit_commit_p99_us"):
                v = values.get(key)
                if (not isinstance(v, (int, float)) or isinstance(v, bool)
                        or v < 0):
                    fail(path, f"rows[{i}].values['{key}']: expected "
                               f"non-negative number (got {v!r})")
        INGEST_COUNTERS = ("ingest.submitted", "ingest.accepted",
                           "ingest.deduped", "ingest.rejected_backpressure",
                           "ingest.prescreen_failed", "ingest.batches",
                           "ingest.batch_occupancy_pct", "mempool.evictions",
                           "mempool.size_peak")
        for name in INGEST_COUNTERS:
            if name not in doc["counters"]:
                fail(path, f"counters: missing '{name}'")
        for name in ("ingest.submitted", "ingest.accepted", "ingest.batches"):
            if doc["counters"][name] < 1:
                fail(path, f"counters['{name}']: expected >= 1 "
                           f"(got {doc['counters'][name]!r})")

    # The store.* counter block (PR 10, docs/STORAGE.md). exp24 measures the
    # disk backend directly, so its artifact must always carry the block with
    # live write-queue and cold-read evidence; any OTHER artifact produced by
    # a --store disk run must carry it too, or there is no evidence the
    # persistent backend actually ran.
    STORE_COUNTERS = ("store.puts", "store.dup_puts", "store.staged_puts",
                      "store.wq_enqueued", "store.wq_retired", "store.wq_depth",
                      "store.wq_depth_peak", "store.warm_reads",
                      "store.cold_reads", "store.cold_read_bytes",
                      "store.segments", "store.segment_bytes",
                      "store.appended_bytes", "store.tombstones",
                      "store.compactions", "store.reclaimed_bytes",
                      "store.manifest_writes", "store.recovered_blocks",
                      "store.truncated_tail_bytes")
    if doc["name"] == "exp24_coldstart" or store_backend == "disk":
        for name in STORE_COUNTERS:
            if name not in doc["counters"]:
                fail(path, f"counters: missing '{name}'")
        for name in ("store.puts", "store.staged_puts", "store.appended_bytes"):
            if doc["counters"][name] < 1:
                fail(path, f"counters['{name}']: expected >= 1 "
                           f"(got {doc['counters'][name]!r})")
        if doc["counters"]["store.wq_retired"] != doc["counters"]["store.wq_enqueued"]:
            fail(path, "counters: store.wq_retired != store.wq_enqueued "
                       "(writes left in flight at capture)")

    # exp24 (cold-start cost) compares the same deployment over both
    # backends: one completed-bootstrap row per backend, each with the
    # cold/warm split that backs the persistence-cost claim.
    if doc["name"] == "exp24_coldstart":
        backends = {}
        for i, row in enumerate(doc["rows"]):
            values = row["values"]
            backend = values.get("backend")
            if backend not in ("mem", "disk"):
                fail(path, f"rows[{i}].values['backend']: expected 'mem' or "
                           f"'disk' (got {backend!r})")
            backends[backend] = values
            if values.get("bootstrap_complete") is not True:
                fail(path, f"rows[{i}]: bootstrap must complete "
                           f"(bootstrap_complete)")
            for key in ("bootstrap_us", "bytes_downloaded", "bodies_fetched"):
                v = values.get(key)
                if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                    fail(path, f"rows[{i}].values['{key}']: expected integer "
                               f">= 1 (got {v!r})")
            for key in ("cold_reads", "warm_reads", "retrieval_p50_us",
                        "retrieval_p99_us"):
                v = values.get(key)
                if (not isinstance(v, (int, float)) or isinstance(v, bool)
                        or v < 0):
                    fail(path, f"rows[{i}].values['{key}']: expected "
                               f"non-negative number (got {v!r})")
        for backend in ("mem", "disk"):
            if backend not in backends:
                fail(path, f"rows: missing backend '{backend}'")
        if backends["disk"].get("cold_reads", 0) < 1:
            fail(path, "rows: the disk run never read cold "
                       "(cold_reads >= 1 expected)")
        if backends["mem"].get("cold_reads", 0) != 0:
            fail(path, "rows: the mem run reported cold reads")

    for name, value in doc["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            fail(path, f"counters['{name}']: expected integer")

    # Any artifact that ran the event engine sharded (config.shards > 1 and
    # the sim counter block captured) must carry the sharded-engine
    # instrumentation, or there is no evidence the lanes actually ran.
    SHARD_COUNTERS = ("sim.shards", "sim.shard_rounds", "sim.shard_barriers",
                      "sim.shard_lookahead_us", "sim.shard_local_msgs",
                      "sim.shard_xshard_msgs")
    if shards > 1 and "sim.events_executed" in doc["counters"]:
        for name in SHARD_COUNTERS:
            if name not in doc["counters"]:
                fail(path, f"counters: sharded run (config.shards={shards}) "
                           f"missing '{name}'")
        if doc["counters"]["sim.shards"] < 2:
            fail(path, f"counters['sim.shards']: expected >= 2 for a sharded "
                       f"run (got {doc['counters']['sim.shards']!r})")
        if doc["counters"]["sim.shard_rounds"] < 1:
            fail(path, "counters['sim.shard_rounds']: expected >= 1 "
                       f"(got {doc['counters']['sim.shard_rounds']!r})")
        if doc["counters"]["sim.shard_lookahead_us"] < 1:
            fail(path, "counters['sim.shard_lookahead_us']: expected >= 1 "
                       f"(got {doc['counters']['sim.shard_lookahead_us']!r})")

    # exp19 additionally runs the Part-3 shard sweep unconditionally and
    # mirrors one sharded cell's counters into the artifact, so for it the
    # full sim.shard_* set is required regardless of config.shards — plus at
    # least one sweep row per strategy with an in-range cross-shard fraction.
    if doc["name"] == "exp19_simcore":
        for name in SHARD_COUNTERS:
            if name not in doc["counters"]:
                fail(path, f"counters: exp19 shard sweep missing '{name}'")
        if doc["counters"]["sim.shards"] < 2:
            fail(path, "counters['sim.shards']: exp19 mirrors a K >= 2 sweep "
                       f"cell (got {doc['counters']['sim.shards']!r})")
        if (doc["counters"]["sim.shard_local_msgs"]
                + doc["counters"]["sim.shard_xshard_msgs"]) < 1:
            fail(path, "counters: exp19 sharded cell routed no messages")
        sweep_strategies = set()
        for i, row in enumerate(doc["rows"]):
            if not row["label"].startswith("shards:"):
                continue
            values = row["values"]
            sweep_strategies.add(values.get("strategy"))
            frac = values.get("xshard_fraction")
            if (not isinstance(frac, (int, float)) or isinstance(frac, bool)
                    or not 0.0 <= frac <= 1.0):
                fail(path, f"rows[{i}].values['xshard_fraction']: expected "
                           f"number in [0, 1] (got {frac!r})")
            k = values.get("shards")
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                fail(path, f"rows[{i}].values['shards']: expected integer "
                           f">= 1 (got {k!r})")
        for strategy in ("ici", "fullrep"):
            if strategy not in sweep_strategies:
                fail(path, f"rows: exp19 shard sweep missing strategy "
                           f"'{strategy}'")

    # Sim-driven artifacts carry the run's memory footprint (PR 6). The
    # counters are environment measurements, so only their presence and
    # positivity are checked — and the scale sweeps (exp19/exp21) must have
    # them, or the bytes-per-node trajectory has nothing backing it.
    for name in ("sim.bytes_per_node", "sim.rss_bytes", "sim.peak_rss_bytes"):
        if name in doc["counters"] and doc["counters"][name] <= 0:
            fail(path, f"counters['{name}']: expected positive integer "
                       f"(got {doc['counters'][name]!r})")
    if doc["name"] in ("exp19_simcore", "exp21_scale"):
        if "sim.bytes_per_node" not in doc["counters"]:
            fail(path, "counters: scale sweeps must report sim.bytes_per_node")

    for name, summary in doc["distributions"].items():
        check_summary(path, f"distributions['{name}']", summary)

    labels = set()
    seen = set()
    for i, span in enumerate(doc["spans"]):
        where = f"spans[{i}]"
        if not isinstance(span, dict):
            fail(path, f"{where}: expected object")
        label = span.get("label")
        if not isinstance(label, str) or not label:
            fail(path, f"{where}: missing non-empty 'label'")
        if label in seen:
            fail(path, f"{where}: duplicate span label '{label}'")
        seen.add(label)
        if "wall_us" not in span or "sim_us" not in span:
            fail(path, f"{where}: needs both 'wall_us' and 'sim_us' (object or null)")
        populated = False
        for key in ("wall_us", "sim_us"):
            if span[key] is None:
                continue
            check_summary(path, f"{where}.{key}", span[key])
            # A serialized aggregate with zero samples means the emitter wrote
            # a dead summary instead of null — reject it outright.
            if span[key]["count"] == 0:
                fail(path, f"{where}.{key}: span '{label}' aggregate has count 0 "
                           "(emit null instead of an empty summary)")
            populated = True
        if not populated:
            fail(path, f"{where}: span '{label}' has no samples in wall_us or sim_us")
        labels.add(label)
    return labels


def collect_files(arguments):
    files = []
    for arg in arguments:
        if os.path.isdir(arg):
            entries = sorted(
                os.path.join(arg, e) for e in os.listdir(arg)
                if e.startswith("BENCH_") and e.endswith(".json"))
            if not entries:
                print(f"error: no BENCH_*.json files in directory {arg}", file=sys.stderr)
                sys.exit(2)
            files.extend(entries)
        elif os.path.isfile(arg):
            files.append(arg)
        else:
            print(f"error: no such file or directory: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main():
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json files against the ici-bench-v1 schema.")
    parser.add_argument("paths", nargs="+", metavar="FILE_OR_DIR",
                        help="BENCH_*.json files or directories containing them")
    parser.add_argument("--require-spans", default="",
                        help="comma-separated span labels that must appear, "
                             "populated, in the union of all files")
    args = parser.parse_args()

    files = collect_files(args.paths)
    all_labels = set()
    failed = False
    for path in files:
        try:
            all_labels |= check_file(path)
            print(f"ok: {path}")
        except ValidationError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            failed = True

    required = {s.strip() for s in args.require_spans.split(",") if s.strip()}
    missing = required - all_labels
    if missing:
        print(f"FAIL: required span labels absent from every file: "
              f"{', '.join(sorted(missing))}", file=sys.stderr)
        failed = True

    if failed:
        sys.exit(1)
    print(f"validated {len(files)} file(s), {len(all_labels)} distinct span label(s)")


if __name__ == "__main__":
    main()
