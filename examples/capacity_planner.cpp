// Capacity planner: given a target network, how should you pick the number
// of clusters and replication factor?
//
//   $ ./build/examples/capacity_planner [nodes] [daily_blocks] [tx_per_block]
//
// A deployment-facing tool built on the library's storage model: sweeps
// (cluster size, replication) and prints the per-node storage burden after
// one year of chain growth, plus the availability class each choice buys.
// No simulation needed — assignments and sizes are computed exactly the
// way IciNetwork places real blocks.
#include <cstdlib>
#include <iostream>

#include "chain/workload.h"
#include "common/stats.h"
#include "common/table.h"
#include "ici/network.h"
#include "storage/storage_meter.h"

int main(int argc, char** argv) {
  using namespace ici;

  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::size_t daily_blocks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 144;
  const std::size_t txs_per_block = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2000;

  // Measure the real per-block wire size from one generated block rather
  // than guessing: build a tiny chain with the requested tx density.
  ChainGenConfig probe;
  probe.blocks = 2;
  probe.txs_per_block = std::min<std::size_t>(txs_per_block, 256);
  const Chain sample = ChainGenerator(probe).generate();
  const double bytes_per_tx =
      static_cast<double>(sample.at_height(1).serialized_size()) /
      static_cast<double>(sample.at_height(1).txs().size());
  const double block_bytes = bytes_per_tx * static_cast<double>(txs_per_block);
  const double yearly_bytes = block_bytes * static_cast<double>(daily_blocks) * 365.0;

  std::cout << "Network of " << nodes << " nodes, " << daily_blocks << " blocks/day x "
            << txs_per_block << " txs (" << format_bytes(block_bytes) << "/block)\n"
            << "Ledger growth after one year: " << format_bytes(yearly_bytes) << "\n\n";

  Table table({"cluster size m", "clusters k", "r", "bytes/node/year", "vs full-rep",
               "availability class"});
  for (std::size_t m : {10u, 20u, 50u, 100u}) {
    if (m > nodes) continue;
    const std::size_t k = nodes / m;
    for (std::size_t r : {1u, 2u, 3u}) {
      if (r >= m) continue;
      const double per_node = yearly_bytes * static_cast<double>(r) / static_cast<double>(m);
      const char* availability = r == 1 ? "cluster-level only"
                                : r == 2 ? "survives 1 holder down"
                                         : "survives 2 holders down";
      table.row({std::to_string(m), std::to_string(k), std::to_string(r),
                 format_bytes(per_node),
                 format_double(per_node / yearly_bytes * 100, 2) + "%", availability});
    }
  }
  table.print(std::cout);

  std::cout << "\nRule of thumb from the paper: per-node storage = D*r/m; pick m as large as "
               "your cluster-management tolerance allows, and r=2 unless churn is minimal.\n"
            << "(A full-replication node would store " << format_bytes(yearly_bytes)
            << " per year; a RapidChain member with committee count k_rc stores D/k_rc.)\n";
  return 0;
}
