// Bootstrap cost: how expensive is it for a new participant to join?
//
//   $ ./build/examples/bootstrap_cost
//
// Builds the same 300-block ledger under all three flavours — full
// replication, RapidChain-style committee sharding, and ICIStrategy — then
// joins one fresh node to each and prints what the join actually cost in
// bytes and (simulated) time. This is the abstract's "greatly save the
// overhead of bootstrapping" claim, runnable.
#include <iostream>

#include "baseline/fullrep.h"
#include "baseline/rapidchain.h"
#include "chain/workload.h"
#include "common/stats.h"
#include "common/table.h"
#include "ici/bootstrap.h"
#include "ici/network.h"

int main() {
  using namespace ici;

  ChainGenConfig chain_cfg;
  chain_cfg.blocks = 300;
  chain_cfg.txs_per_block = 40;
  const Chain chain = ChainGenerator(chain_cfg).generate();
  constexpr std::size_t kNodes = 100;

  std::cout << "Ledger: " << chain.size() << " blocks, "
            << format_bytes(static_cast<double>(chain.total_bytes())) << "\n"
            << "Network: " << kNodes << " existing nodes; a new node joins at (50, 50)\n\n";

  Table table({"system", "downloads", "sim time (s)", "bodies", "note"});

  {
    baseline::FullRepConfig cfg;
    cfg.node_count = kNodes;
    cfg.validate = false;
    baseline::FullRepNetwork net(cfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);
    const auto report = net.bootstrap({50, 50});
    table.row({"full replication", format_bytes(static_cast<double>(report.bytes_downloaded)),
               format_double(static_cast<double>(report.elapsed_us) / 1e6, 2),
               std::to_string(report.bodies_fetched), "entire ledger"});
  }
  {
    baseline::RapidChainConfig cfg;
    cfg.node_count = kNodes;
    cfg.committee_count = 5;
    baseline::RapidChainNetwork net(cfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);
    const auto report = net.bootstrap({50, 50});
    table.row({"rapidchain (k=5)", format_bytes(static_cast<double>(report.bytes_downloaded)),
               format_double(static_cast<double>(report.elapsed_us) / 1e6, 2),
               std::to_string(report.bodies_fetched), "one committee shard"});
  }
  {
    core::IciNetworkConfig cfg;
    cfg.node_count = kNodes;
    cfg.ici.cluster_count = 5;  // clusters of ~20
    core::IciNetwork net(cfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);
    const auto report = core::Bootstrapper::join(net, {50, 50});
    table.row({"icistrategy (m=20)", format_bytes(static_cast<double>(report.bytes_downloaded)),
               format_double(static_cast<double>(report.elapsed_us) / 1e6, 2),
               std::to_string(report.bodies_fetched), "headers + assigned share"});
  }

  table.print(std::cout);
  std::cout << "\nThe ICI joiner syncs every header (cheap) and then fetches only the bodies "
               "the intra-cluster assignment hands it — roughly ledger/m plus headers.\n";
  return 0;
}
