// Churn resilience: what happens to an ICIStrategy network when nodes keep
// joining and leaving?
//
//   $ ./build/examples/churn_resilience [replication]
//
// Runs an hour of simulated churn over a 60-node network and prints an
// availability timeline, repair activity, and the storage overhead the
// chosen intra-cluster replication factor costs. Try r=1 vs r=2 to see the
// paper's storage/availability trade-off first-hand.
#include <cstdlib>
#include <iostream>

#include "chain/workload.h"
#include "common/stats.h"
#include "ici/network.h"
#include "storage/storage_meter.h"

int main(int argc, char** argv) {
  using namespace ici;

  const std::size_t replication = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
  std::cout << "Intra-cluster replication r = " << replication
            << " (pass a number to change, e.g. ./churn_resilience 1)\n\n";

  ChainGenConfig chain_cfg;
  chain_cfg.txs_per_block = 25;
  ChainGenerator generator(chain_cfg);

  core::IciNetworkConfig net_cfg;
  net_cfg.node_count = 60;
  net_cfg.ici.cluster_count = 4;
  net_cfg.ici.replication = replication;
  core::IciNetwork network(net_cfg);

  Block genesis = generator.workload().make_genesis();
  generator.workload().confirm(genesis);
  Chain chain(genesis);
  network.init_with_genesis(genesis);

  for (int i = 0; i < 15; ++i) {
    chain.append(generator.next_block(chain));
    network.disseminate_and_settle(chain.tip());
  }
  std::cout << "Seeded " << chain.height() << " blocks; availability = "
            << format_double(network.availability(), 4) << "\n\n";

  // 30% of nodes churn: ~8 min sessions, ~90 s downtime.
  sim::ChurnConfig churn;
  churn.churn_fraction = 0.3;
  churn.mean_uptime_us = 480'000'000;
  churn.mean_downtime_us = 90'000'000;
  network.start_churn(churn);

  std::cout << "minute  availability  offline  repairs  unavailable-events\n";
  RunningStat availability;
  for (int minute = 1; minute <= 60; ++minute) {
    network.simulator().run_until(network.simulator().now() + 60'000'000);
    const double a = network.availability();
    availability.add(a);
    if (minute % 5 == 0) {
      std::size_t offline = 0;
      for (std::size_t id = 0; id < network.node_count(); ++id) {
        if (!network.directory().online(static_cast<cluster::NodeId>(id))) ++offline;
      }
      std::cout << "  " << minute << "\t" << format_double(a, 4) << "\t  " << offline
                << "\t   " << network.metrics().counter_value("repair.copies_completed")
                << "\t    " << network.metrics().counter_value("repair.unavailable_blocks")
                << "\n";
    }
  }

  const StorageSnapshot snap = StorageMeter::snapshot(network.stores());
  std::cout << "\nMean availability over the hour: " << format_double(availability.mean(), 4)
            << "\nWorst sampled availability:      " << format_double(availability.min(), 4)
            << "\nMean per-node storage:           " << format_bytes(snap.mean_bytes)
            << "  (ledger is " << format_bytes(static_cast<double>(chain.total_bytes()))
            << ")\n";
  std::cout << "\nWith r=1 the sole holder of a block going offline leaves its cluster "
               "unable to serve that block until repair or return; r>=2 hides single "
               "departures entirely.\n";
  return 0;
}
