// Quickstart: stand up an ICIStrategy network, disseminate a few blocks,
// and inspect what each node actually stores.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface: workload generation, network
// construction, block dissemination, storage inspection, and retrieval.
#include <iostream>

#include "chain/workload.h"
#include "common/stats.h"
#include "ici/network.h"
#include "storage/storage_meter.h"

int main() {
  using namespace ici;

  // 1. A synthetic-but-valid transaction workload. Every generated block
  //    passes full validation (signatures, UTXO existence, value balance).
  ChainGenConfig chain_cfg;
  chain_cfg.txs_per_block = 50;
  ChainGenerator generator(chain_cfg);

  // 2. An ICIStrategy network: 60 nodes, latency-aware k-means clustering
  //    into 4 clusters of ~15, each block stored once per cluster (r=1).
  core::IciNetworkConfig net_cfg;
  net_cfg.node_count = 60;
  net_cfg.ici.cluster_count = 4;
  net_cfg.ici.replication = 1;
  core::IciNetwork network(net_cfg);

  // 3. Both sides share one genesis: the workload's funding block.
  Block genesis = generator.workload().make_genesis();
  generator.workload().confirm(genesis);
  Chain chain(genesis);
  network.init_with_genesis(genesis);

  // 4. Produce and disseminate blocks. disseminate_and_settle() runs the
  //    whole protocol — head fan-out, slice verification, UTXO lookups,
  //    votes, commit — and returns the time until every cluster committed.
  std::cout << "Disseminating 10 blocks of 50 transactions...\n";
  for (int i = 0; i < 10; ++i) {
    chain.append(generator.next_block(chain));
    const sim::SimTime latency = network.disseminate_and_settle(chain.tip());
    std::cout << "  block " << chain.height() << " committed by all clusters in "
              << format_double(static_cast<double>(latency) / 1000.0, 1) << " ms\n";
  }

  // 5. What does each node store? Everyone has every header; bodies are
  //    spread across cluster members.
  const StorageSnapshot snap = StorageMeter::snapshot(network.stores());
  std::cout << "\nLedger size:            " << format_bytes(static_cast<double>(chain.total_bytes()))
            << "\nMean storage per node:  " << format_bytes(snap.mean_bytes)
            << "\nMax storage on a node:  " << format_bytes(snap.max_bytes)
            << "\nFull replication would be "
            << format_bytes(static_cast<double>(chain.total_bytes())) << " per node.\n";

  // 6. Any node can read any block: local hit or one intra-cluster fetch.
  std::cout << "\nFetching block 3 from node 0...\n";
  network.node(0).fetch_block(chain.at_height(3).hash(), 3, [](const core::FetchResult& r) {
    std::cout << "  got block with " << r.block->txs().size() << " txs in "
              << format_double(static_cast<double>(r.elapsed_us) / 1000.0, 2) << " ms\n";
  });
  network.settle();

  std::cout << "\nProtocol counters:\n";
  for (const auto& [name, counter] : network.metrics().counters()) {
    std::cout << "  " << name << " = " << counter.value() << "\n";
  }
  return 0;
}
