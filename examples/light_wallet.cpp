// Light wallet: track the chain with headers only and verify payments with
// Merkle inclusion proofs served by the cluster.
//
//   $ ./build/examples/light_wallet
//
// A wallet that stores ~92 bytes per block instead of whole blocks: it
// follows the header chain through an spv::LightClient and, when it needs
// to confirm a payment, asks any ICIStrategy node for an inclusion proof.
// The proof verifies against the wallet's own headers, so the serving node
// is untrusted.
#include <iostream>

#include "chain/workload.h"
#include "common/stats.h"
#include "ici/network.h"
#include "spv/proof.h"

int main() {
  using namespace ici;

  // A running network with some history.
  ChainGenConfig chain_cfg;
  chain_cfg.txs_per_block = 40;
  ChainGenerator generator(chain_cfg);

  core::IciNetworkConfig net_cfg;
  net_cfg.node_count = 40;
  net_cfg.ici.cluster_count = 2;
  core::IciNetwork network(net_cfg);

  Block genesis = generator.workload().make_genesis();
  generator.workload().confirm(genesis);
  Chain chain(genesis);
  network.init_with_genesis(genesis);
  for (int i = 0; i < 12; ++i) {
    chain.append(generator.next_block(chain));
    network.disseminate_and_settle(chain.tip());
  }
  std::cout << "Chain: " << chain.size() << " blocks, "
            << format_bytes(static_cast<double>(chain.total_bytes())) << " of bodies\n";

  // The wallet follows headers only.
  spv::LightClient wallet(genesis.header());
  std::vector<BlockHeader> headers;
  for (const Block& b : chain.blocks()) headers.push_back(b.header());
  wallet.sync(headers);
  std::cout << "Wallet state: " << wallet.size() << " headers ("
            << format_bytes(static_cast<double>(wallet.size()) * BlockHeader::kWireSize)
            << ") — " << format_double(static_cast<double>(chain.total_bytes()) /
                                           (static_cast<double>(wallet.size()) *
                                            BlockHeader::kWireSize),
                                       0)
            << "x smaller than the full chain\n\n";

  // Confirm three payments: ask a random node for proofs, verify locally.
  for (std::uint64_t height : {3u, 7u, 11u}) {
    const Block& block = chain.at_height(height);
    const Transaction& payment = block.txs()[1];

    network.node(5).fetch_proof(
        payment.txid(), block.hash(), height,
        [&](std::optional<spv::TxInclusionProof> proof, sim::SimTime elapsed) {
          if (!proof) {
            std::cout << "  proof for tx in block " << height << ": MISS\n";
            return;
          }
          const bool ok = wallet.validate(*proof);
          std::cout << "  tx " << payment.txid().short_hex() << " in block " << height
                    << ": proof " << proof->wire_size() << " B, fetched in "
                    << format_double(static_cast<double>(elapsed) / 1000.0, 1)
                    << " ms, wallet verdict: " << (ok ? "CONFIRMED" : "REJECTED") << "\n";
        });
    network.settle();
  }

  // A forged proof is rejected no matter who serves it.
  const Block& block = chain.at_height(3);
  auto forged = spv::build_proof(block, block.txs()[1].txid());
  forged->tx_index += 1;
  std::cout << "\nForged proof (wrong index) accepted? "
            << (wallet.validate(*forged) ? "yes (BUG)" : "no — rejected as expected") << "\n";
  return 0;
}
